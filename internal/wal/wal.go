// Package wal is the write-ahead log under DITA's streaming ingest: one
// append-only file per partition holding the mutations (inserts, deletes)
// applied since the partition's last sealed snapshot. A partition's
// durable state is always the pair (sealed snapshot, WAL suffix past the
// snapshot's watermark); replaying the suffix onto the snapshot
// reconstructs the partition exactly, so a crash at any instant loses
// nothing that was acknowledged.
//
// Format (all little-endian):
//
//	header   8 bytes  magic "DITAWAL1"
//	record   u32 payload length
//	         u32 CRC-32C over (u64 record offset ‖ payload)
//	         payload:
//	           u64 seq        strictly increasing per log
//	           u8  op         1 = insert, 2 = delete
//	           u64 id         trajectory id
//	           u32 n          point count (0 for deletes)
//	           n × (f64 x, f64 y)
//
// The CRC binds each record to its file offset, so a valid record copied
// to a different position (disk-level block reshuffling, or a fuzzer
// splicing real bytes) fails validation instead of replaying a genuine
// record in the wrong place. Replay accepts the longest valid prefix: the
// first short, checksum-failing, undecodable, or sequence-regressing
// record ends the log there and the tail is truncated — a torn tail from
// a crashed append is expected, not an error. A mangled header is
// CorruptError: there is no prefix to trust.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sync"

	"dita/internal/geom"
	"dita/internal/snap"
)

// Op codes. The zero value is invalid on purpose: a zeroed payload must
// not decode into a plausible record.
const (
	OpInsert byte = 1
	OpDelete byte = 2
)

const (
	magic     = "DITAWAL1"
	headerLen = len(magic)
	// maxPayload bounds a single record so a mangled length prefix cannot
	// drive a multi-gigabyte allocation during replay. A trajectory is at
	// most a few thousand points; 16 MiB is orders of magnitude above any
	// legitimate record.
	maxPayload = 16 << 20
	// recordOverhead is the fixed per-record framing: length + CRC.
	recordOverhead = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one logged mutation. For OpDelete, Points is empty.
type Record struct {
	Seq    uint64
	Op     byte
	ID     int
	Points []geom.Point
}

// CorruptError reports a log whose header failed validation — unlike a
// torn tail (silently truncated), a bad header leaves no trustworthy
// prefix, so the caller must discard the file and rebuild from the
// snapshot plus re-replication.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "wal: corrupt log: " + e.Reason }

// IsCorrupt reports whether err marks a structurally invalid log.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Classify maps an Open/Append error to the coarse class skip reports and
// obs counters use: "corrupt" (structure/checksum), "io" (filesystem or
// injected fault), or "" for nil.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case IsCorrupt(err):
		return "corrupt"
	default:
		return "io"
	}
}

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// encodePayload serializes one record's payload (everything the CRC
// covers except the offset binding).
func encodePayload(r Record) []byte {
	b := make([]byte, 0, 8+1+8+4+16*len(r.Points))
	b = binary.LittleEndian.AppendUint64(b, r.Seq)
	b = append(b, r.Op)
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(r.ID)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Points)))
	for _, p := range r.Points {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Y))
	}
	return b
}

// decodePayload is the strict inverse: every byte must be accounted for.
func decodePayload(b []byte) (Record, error) {
	var r Record
	if len(b) < 8+1+8+4 {
		return r, corruptf("payload too short (%d bytes)", len(b))
	}
	r.Seq = binary.LittleEndian.Uint64(b)
	r.Op = b[8]
	if r.Op != OpInsert && r.Op != OpDelete {
		return r, corruptf("unknown op %d", r.Op)
	}
	r.ID = int(int64(binary.LittleEndian.Uint64(b[9:])))
	n := int(binary.LittleEndian.Uint32(b[17:]))
	if rest := len(b) - (8 + 1 + 8 + 4); rest != 16*n {
		return r, corruptf("point count %d disagrees with payload size", n)
	}
	if n > 0 {
		r.Points = make([]geom.Point, n)
		off := 21
		for i := range r.Points {
			r.Points[i].X = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
			r.Points[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(b[off+8:]))
			off += 16
		}
	}
	return r, nil
}

// recordCRC binds payload bytes to the file offset of the record's
// length prefix.
func recordCRC(off int64, payload []byte) uint32 {
	var ob [8]byte
	binary.LittleEndian.PutUint64(ob[:], uint64(off))
	crc := crc32.Checksum(ob[:], castagnoli)
	return crc32.Update(crc, castagnoli, payload)
}

// appendRecord frames one record at offset off.
func appendRecord(b []byte, off int64, r Record) []byte {
	payload := encodePayload(r)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, recordCRC(off, payload))
	return append(b, payload...)
}

// scan walks data (a full log image, header included) and returns the
// longest valid record prefix plus the byte offset just past it. It never
// fails: anything after the first invalid record is a tail to truncate.
func scan(data []byte) (recs []Record, valid int64) {
	off := int64(headerLen)
	lastSeq := uint64(0)
	for {
		rest := data[off:]
		if len(rest) < recordOverhead {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n > maxPayload || recordOverhead+n > len(rest) {
			return recs, off
		}
		crc := binary.LittleEndian.Uint32(rest[4:])
		payload := rest[recordOverhead : recordOverhead+n]
		if recordCRC(off, payload) != crc {
			return recs, off
		}
		r, err := decodePayload(payload)
		if err != nil || r.Seq <= lastSeq {
			// An undecodable payload with a passing CRC, or a sequence
			// regression, can only come from corruption the CRC happened
			// to survive (or a crafted file); the prefix before it is
			// still exact, so stop here like any other torn tail.
			return recs, off
		}
		lastSeq = r.Seq
		recs = append(recs, r)
		off += int64(recordOverhead + n)
	}
}

// ReplayReport accounts one Open: the valid records recovered and any
// invalid tail dropped.
type ReplayReport struct {
	// Records is the longest valid prefix of the log, in append order.
	Records []Record
	// TruncatedBytes is how much invalid tail Open cut off (0 = clean).
	TruncatedBytes int64
}

// Log is one partition's open write-ahead log. All methods are safe for
// concurrent use; Append is durable (fsync) before it returns.
type Log struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64 // current valid file size; records append here
	last uint64

	// Faults, when non-nil, injects seeded append failures (clean errors,
	// mid-write crashes leaving a torn tail) — the chaos harness for WAL
	// I/O, sharing snap's fault model. Never set it in production.
	Faults *snap.FaultPlan
}

// Open opens (creating if needed) the log at path, validates it, and
// recovers the longest valid record prefix. A torn or bit-rotted tail is
// truncated on the spot — the file on disk is valid after a successful
// Open. A mangled header is a CorruptError; the caller should delete the
// file and rebuild from its snapshot.
func Open(path string) (*Log, *ReplayReport, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{path: path, f: f}
	rep := &ReplayReport{}
	if len(data) == 0 {
		// Fresh log: write the header now so every later append is pure
		// record bytes and a crash can only tear a record, never the
		// header.
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		l.size = int64(headerLen)
		return l, rep, nil
	}
	if len(data) < headerLen || string(data[:headerLen]) != magic {
		f.Close()
		return nil, nil, corruptf("bad magic in %s", path)
	}
	recs, valid := scan(data)
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: %w", err)
		}
		rep.TruncatedBytes = int64(len(data)) - valid
	}
	rep.Records = recs
	l.size = valid
	if len(recs) > 0 {
		l.last = recs[len(recs)-1].Seq
	}
	return l, rep, nil
}

// LastSeq returns the sequence number of the last durable record (0 when
// the log is empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

// Size returns the log's current on-disk size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Append frames, writes, and fsyncs the records, in order, as one write.
// Sequence numbers must be strictly increasing across the log's life;
// gaps are fine (truncation watermarks and coordinator-side assignment
// both skip numbers). On any error nothing is considered appended: the
// file is restored to its prior valid length (or left with a torn tail an
// injected crash planted, which the next Open truncates), and the caller
// must treat the mutation as not durable.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var buf []byte
	off := l.size
	lastSeq := l.last
	for _, r := range recs {
		if r.Seq <= lastSeq {
			return corruptf("append seq %d not after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		next := appendRecord(buf, off, r)
		off += int64(len(next) - len(buf))
		buf = next
	}
	write := buf
	crashAfter := -1
	if l.Faults != nil {
		var err error
		write, crashAfter, err = l.Faults.Apply(buf)
		if err != nil {
			return err
		}
	}
	if crashAfter >= 0 {
		// Injected mid-append crash: a prefix lands on disk with no fsync
		// and the "process dies" — the torn tail the next Open truncates.
		// The in-memory log keeps its pre-append size so nothing built on
		// this "process" trusts the record.
		if crashAfter > len(write) {
			crashAfter = len(write)
		}
		l.f.WriteAt(write[:crashAfter], l.size)
		return &snap.InjectedFault{Kind: "crash"}
	}
	if _, err := l.f.WriteAt(write, l.size); err != nil {
		l.f.Truncate(l.size)
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		l.f.Truncate(l.size)
		return fmt.Errorf("wal: %w", err)
	}
	// A fault plan may have torn or bit-flipped the buffer (write !=
	// buf); the file then holds a tail the next Open will cut. The
	// in-memory view still advances — the fault models silent media
	// corruption after a successful syscall, which only a replay sees.
	l.size += int64(len(buf))
	l.last = lastSeq
	return nil
}

// TruncateThrough drops every record with Seq <= watermark by rewriting
// the suffix into a fresh file and renaming it into place (temp → fsync →
// rename), the same discipline snapshots use. A crash mid-truncate leaves
// either the old complete log or the new one — both replay correctly
// against their snapshot, the old one merely redundantly (replay onto a
// merged snapshot skips records at or below its watermark).
func (l *Log) TruncateThrough(watermark uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := os.ReadFile(l.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if int64(len(data)) > l.size {
		data = data[:l.size]
	}
	recs, _ := scan(data)
	img := make([]byte, 0, headerLen)
	img = append(img, magic...)
	last := uint64(0)
	for _, r := range recs {
		if r.Seq <= watermark {
			continue
		}
		img = appendRecord(img, int64(len(img)), r)
		last = r.Seq
	}
	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, l.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	// The old handle now points at an unlinked inode; move to the new one.
	old := l.f
	l.f = f
	old.Close()
	l.size = int64(len(img))
	if last > l.last {
		l.last = last
	}
	return nil
}

// Close closes the underlying file. The log is unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
