package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dita/internal/geom"
	"dita/internal/snap"
)

func rec(seq uint64, op byte, id int, pts ...geom.Point) Record {
	return Record{Seq: seq, Op: op, ID: id, Points: pts}
}

func mustOpen(t *testing.T, path string) (*Log, *ReplayReport) {
	t.Helper()
	l, rep, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, rep
}

func sampleRecords() []Record {
	return []Record{
		rec(1, OpInsert, 100, geom.Point{X: 1, Y: 2}, geom.Point{X: 3, Y: 4}),
		rec(2, OpInsert, 101, geom.Point{X: 5, Y: 6}),
		rec(3, OpDelete, 100),
		rec(7, OpInsert, 102, geom.Point{X: -1, Y: -2}, geom.Point{X: 0, Y: 0}, geom.Point{X: 9, Y: 9}),
		rec(8, OpDelete, 101),
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, rep := mustOpen(t, path)
	if len(rep.Records) != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("fresh log not empty: %+v", rep)
	}
	want := sampleRecords()
	// Mixed batch sizes: single appends and a multi-record batch.
	if err := l.Append(want[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[1], want[2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[3], want[4]); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 8 {
		t.Fatalf("LastSeq = %d, want 8", got)
	}
	l.Close()

	l2, rep2 := mustOpen(t, path)
	defer l2.Close()
	if rep2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", rep2.TruncatedBytes)
	}
	if !reflect.DeepEqual(rep2.Records, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", rep2.Records, want)
	}
	if got := l2.LastSeq(); got != 8 {
		t.Fatalf("reopened LastSeq = %d, want 8", got)
	}
	// Appends continue past the replayed sequence.
	if err := l2.Append(rec(9, OpInsert, 103, geom.Point{X: 1, Y: 1})); err != nil {
		t.Fatal(err)
	}
}

func TestWALRejectsNonIncreasingSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	defer l.Close()
	if err := l.Append(rec(5, OpInsert, 1, geom.Point{})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(5, OpInsert, 2, geom.Point{})); err == nil {
		t.Fatal("append with repeated seq succeeded")
	}
	if err := l.Append(rec(4, OpInsert, 2, geom.Point{})); err == nil {
		t.Fatal("append with regressing seq succeeded")
	}
	// Gaps are fine.
	if err := l.Append(rec(100, OpInsert, 2, geom.Point{})); err != nil {
		t.Fatalf("gapped seq rejected: %v", err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	want := sampleRecords()
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last record.
	torn := data[:len(data)-11]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rep := mustOpen(t, path)
	if rep.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if !reflect.DeepEqual(rep.Records, want[:len(want)-1]) {
		t.Fatalf("torn replay is not the strict prefix: %+v", rep.Records)
	}
	// The file was repaired in place: appends and clean reopens work.
	if err := l2.Append(rec(50, OpInsert, 9, geom.Point{X: 1, Y: 2})); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rep3 := mustOpen(t, path)
	if rep3.TruncatedBytes != 0 {
		t.Fatal("repaired log still reports truncation")
	}
	if n := len(rep3.Records); n != len(want)-1+1 {
		t.Fatalf("repaired log has %d records", n)
	}
}

func TestWALBitFlipStopsReplayAtFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	want := sampleRecords()
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, _ := os.ReadFile(path)
	// Flip a bit inside the second record's payload: replay must stop
	// after record one — never skip ahead to the still-intact tail.
	size0 := recordOverhead + len(encodePayload(want[0]))
	flipAt := headerLen + size0 + recordOverhead + 3
	data[flipAt] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, path)
	if !reflect.DeepEqual(rep.Records, want[:1]) {
		t.Fatalf("flip replay = %+v, want just record 1", rep.Records)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatal("flip did not report dropped bytes")
	}
}

func TestWALBadHeaderIsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!xxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path)
	if err == nil {
		t.Fatal("bad header accepted")
	}
	if !IsCorrupt(err) || Classify(err) != "corrupt" {
		t.Fatalf("bad header classified %q (%v), want corrupt", Classify(err), err)
	}
}

func TestWALRelocatedRecordRejected(t *testing.T) {
	// A genuine record's bytes copied over another offset must not
	// validate: the CRC binds records to their position.
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	want := sampleRecords()[:3]
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, _ := os.ReadFile(path)
	s0 := recordOverhead + len(encodePayload(want[0]))
	s1 := recordOverhead + len(encodePayload(want[1]))
	s2 := recordOverhead + len(encodePayload(want[2]))
	if s1 != s2 {
		t.Skip("need equal-size records for the splice")
	}
	r1 := headerLen + s0
	r2 := r1 + s1
	copy(data[r1:r1+s1], append([]byte(nil), data[r2:r2+s2]...))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, path)
	if !reflect.DeepEqual(rep.Records, want[:1]) {
		t.Fatalf("relocated record replayed: %+v", rep.Records)
	}
}

func TestWALTruncateThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	want := sampleRecords()
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateThrough(3); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 8 {
		t.Fatalf("LastSeq after truncate = %d, want 8", got)
	}
	// Appends keep working on the rewritten file.
	extra := rec(9, OpInsert, 200, geom.Point{X: 7, Y: 7})
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rep := mustOpen(t, path)
	wantAfter := append(append([]Record{}, want[3:]...), extra)
	if !reflect.DeepEqual(rep.Records, wantAfter) {
		t.Fatalf("post-truncate replay:\n got %+v\nwant %+v", rep.Records, wantAfter)
	}
	// Truncating through everything empties the log.
	l2, _ := mustOpen(t, path)
	if err := l2.TruncateThrough(1000); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rep2 := mustOpen(t, path)
	if len(rep2.Records) != 0 {
		t.Fatalf("truncate-all left %d records", len(rep2.Records))
	}
}

func TestWALInjectedCrashLeavesValidPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	want := sampleRecords()
	if err := l.Append(want[0], want[1]); err != nil {
		t.Fatal(err)
	}
	l.Faults = &snap.FaultPlan{Seed: 3, CrashRate: 1}
	err := l.Append(want[2])
	var inj *snap.InjectedFault
	if !errors.As(err, &inj) || inj.Kind != "crash" {
		t.Fatalf("crash-injected append returned %v", err)
	}
	l.Close()
	_, rep := mustOpen(t, path)
	if len(rep.Records) > 2 {
		t.Fatalf("crashed append became durable: %+v", rep.Records)
	}
	if !reflect.DeepEqual(rep.Records, want[:2]) {
		t.Fatalf("crash damaged the durable prefix: %+v", rep.Records)
	}
}

func TestWALInjectedFailIsClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path)
	defer l.Close()
	l.Faults = &snap.FaultPlan{Seed: 1, FailRate: 1}
	err := l.Append(rec(1, OpInsert, 1, geom.Point{}))
	var inj *snap.InjectedFault
	if !errors.As(err, &inj) || inj.Kind != "fail" {
		t.Fatalf("fail-injected append returned %v", err)
	}
	if Classify(err) != "io" {
		t.Fatalf("injected fail classified %q, want io", Classify(err))
	}
	l.Faults = nil
	if err := l.Append(rec(1, OpInsert, 1, geom.Point{})); err != nil {
		t.Fatalf("append after clean failure: %v", err)
	}
}

func TestWALStore(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := Filename("trips/v1", 3)
	ds, pid, ok := ParseFilename(name)
	if !ok || ds != "trips/v1" || pid != 3 {
		t.Fatalf("ParseFilename(%q) = %q, %d, %v", name, ds, pid, ok)
	}
	if _, _, ok := ParseFilename("foo.wal.tmp"); ok {
		t.Fatal("temp file parsed as a log")
	}
	l, _, err := st.Open("trips", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1, OpInsert, 1, geom.Point{X: 1, Y: 1})); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// An orphan temp file is cleaned by Scan and never listed.
	if err := os.WriteFile(filepath.Join(dir, "trips-p9.wal.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Dataset != "trips" || ents[0].Partition != 0 {
		t.Fatalf("Scan = %+v", ents)
	}
	if _, err := os.Stat(filepath.Join(dir, "trips-p9.wal.tmp")); !os.IsNotExist(err) {
		t.Fatal("orphan temp file survived Scan")
	}
	if err := st.Remove("trips", 0); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("trips", 0); err != nil {
		t.Fatal("removing a missing log errored:", err)
	}
	ents, _ = st.Scan()
	if len(ents) != 0 {
		t.Fatalf("Scan after Remove = %+v", ents)
	}
}
