package wal

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dita/internal/snap"
)

// suffix is the log filename extension; tmpSuffix marks in-progress
// truncation rewrites, which readers ignore and Scan cleans up.
const (
	suffix    = ".wal"
	tmpSuffix = ".wal.tmp"
)

// Store manages the per-partition log files of one directory — usually
// the same directory as the partition snapshots, so a partition's durable
// pair (snapshot, WAL) travels together.
type Store struct {
	dir string
	// Faults, when non-nil, is installed on every log the store opens.
	Faults *snap.FaultPlan
}

// NewStore opens (creating if needed) a log directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: empty log directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Filename returns the file name (not path) a partition log uses. Same
// escaping contract as snap.Filename.
func Filename(dataset string, partition int) string {
	return url.PathEscape(dataset) + "-p" + strconv.Itoa(partition) + suffix
}

// ParseFilename inverts Filename. ok is false for names this store did
// not produce (including temp files).
func ParseFilename(name string) (dataset string, partition int, ok bool) {
	if strings.HasSuffix(name, tmpSuffix) || !strings.HasSuffix(name, suffix) {
		return "", 0, false
	}
	stem := strings.TrimSuffix(name, suffix)
	i := strings.LastIndex(stem, "-p")
	if i < 0 {
		return "", 0, false
	}
	pid, err := strconv.Atoi(stem[i+2:])
	if err != nil || pid < 0 {
		return "", 0, false
	}
	ds, err := url.PathUnescape(stem[:i])
	if err != nil {
		return "", 0, false
	}
	return ds, pid, true
}

// Path returns the full path of a partition's log file.
func (st *Store) Path(dataset string, partition int) string {
	return filepath.Join(st.dir, Filename(dataset, partition))
}

// Open opens (creating if needed) a partition's log and recovers its
// valid prefix; see Open.
func (st *Store) Open(dataset string, partition int) (*Log, *ReplayReport, error) {
	l, rep, err := Open(st.Path(dataset, partition))
	if err != nil {
		return nil, nil, err
	}
	l.Faults = st.Faults
	return l, rep, nil
}

// Remove deletes a partition's log (and any orphaned temp file). Removing
// a log that does not exist is not an error. Call it whenever the
// partition's base is discarded or replaced wholesale (Unload, a fresh
// Load) — a WAL must never outlive the snapshot epoch it extends, or a
// re-dispatched partition would replay deltas from a previous life.
func (st *Store) Remove(dataset string, partition int) error {
	final := st.Path(dataset, partition)
	os.Remove(final + ".tmp")
	if err := os.Remove(final); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Entry names one log file found by Scan.
type Entry struct {
	Path      string
	Dataset   string
	Partition int
}

// Scan lists the directory's log files (sorted by dataset, then
// partition) and removes orphaned temp files left by crashed truncation
// rewrites.
func (st *Store) Scan() ([]Entry, error) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(st.dir, name))
			continue
		}
		ds, pid, ok := ParseFilename(name)
		if !ok {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(st.dir, name), Dataset: ds, Partition: pid})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Partition < out[j].Partition
	})
	return out, nil
}
