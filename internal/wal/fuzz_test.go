package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWALReplay mangles a known-good log image — XOR patches at an
// arbitrary position, then an arbitrary truncation — and checks the
// replay safety contract: Open either fails classified (corrupt/io) or
// replays a strict prefix of the records that were appended. A wrong,
// reordered, or invented record is the only failure mode that matters
// for a WAL, and no byte mangling may produce one.
func FuzzWALReplay(f *testing.F) {
	base := sampleRecords()
	img := func(t *testing.T) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "base.wal")
		l, _, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(base...); err != nil {
			t.Fatal(err)
		}
		l.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	f.Add([]byte{}, uint32(0), uint32(1<<30))       // untouched image
	f.Add([]byte{0xFF}, uint32(0), uint32(1<<30))   // header hit
	f.Add([]byte{0x01}, uint32(40), uint32(1<<30))  // payload bit
	f.Add([]byte{7, 7, 7, 7}, uint32(12), uint32(1<<30)) // length prefix
	f.Add([]byte{}, uint32(0), uint32(20))          // torn tail
	f.Add([]byte{0x80, 0x01}, uint32(60), uint32(70)) // mangle + tear

	f.Fuzz(func(t *testing.T, patch []byte, pos uint32, keep uint32) {
		data := img(t)
		if len(patch) > len(data) {
			patch = patch[:len(data)]
		}
		for i, b := range patch {
			data[(int(pos)+i)%len(data)] ^= b
		}
		if n := int(keep % uint32(len(data)+1)); n < len(data) {
			data = data[:n]
		}
		path := filepath.Join(t.TempDir(), "mangled.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(path)
		if err != nil {
			if c := Classify(err); c != "corrupt" && c != "io" {
				t.Fatalf("unclassified open error %q: %v", c, err)
			}
			return
		}
		defer l.Close()
		if len(rep.Records) > len(base) {
			t.Fatalf("replayed %d records, only %d were appended", len(rep.Records), len(base))
		}
		for i, r := range rep.Records {
			if !reflect.DeepEqual(r, base[i]) {
				t.Fatalf("record %d replayed wrong:\n got %+v\nwant %+v", i, r, base[i])
			}
		}
		// The truncation repair must leave a clean log behind.
		l.Close()
		_, rep2, err := Open(path)
		if err != nil {
			t.Fatalf("repaired log failed to reopen: %v", err)
		}
		if rep2.TruncatedBytes != 0 {
			t.Fatalf("repaired log still has %d invalid tail bytes", rep2.TruncatedBytes)
		}
		if !reflect.DeepEqual(rep2.Records, rep.Records) {
			t.Fatal("repaired log replays differently")
		}
	})
}

// FuzzWALReplayRaw feeds entirely arbitrary bytes as a log file: Open
// must never panic, and whatever it accepts must be strictly
// seq-increasing with decodable payloads.
func FuzzWALReplayRaw(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(append([]byte(magic), 0, 0, 0, 0, 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "raw.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(path)
		if err != nil {
			if c := Classify(err); c != "corrupt" && c != "io" {
				t.Fatalf("unclassified open error %q: %v", c, err)
			}
			return
		}
		defer l.Close()
		last := uint64(0)
		for _, r := range rep.Records {
			if r.Seq <= last {
				t.Fatalf("non-increasing seq %d after %d", r.Seq, last)
			}
			last = r.Seq
			if r.Op != OpInsert && r.Op != OpDelete {
				t.Fatalf("invalid op %d replayed", r.Op)
			}
		}
	})
}
