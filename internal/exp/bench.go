package exp

import (
	"fmt"
	"os"
	"sort"
	"time"

	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/wal"
)

// BenchReport is the machine-readable output of one `ditabench
// -bench-json` run: for each workload (search, kNN, self-join) the
// wall-clock latency distribution and the merged pruning funnel. The
// schema is documented in EXPERIMENTS.md; CI and perf-tracking scripts
// consume the JSON, humans read the tables.
type BenchReport struct {
	Name string `json:"name"` // dataset preset: "beijing", "chengdu", "osm"
	// Trajectories is the dataset cardinality after Scale.
	Trajectories int   `json:"trajectories"`
	Workers      int   `json:"workers"`
	Seed         int64 `json:"seed"`
	// Parallelism is the resolved per-partition verification fan-out the
	// run used (VerifyParallelism with 0 mapped to the core count).
	Parallelism int `json:"parallelism"`
	// Scale is the cardinality multiplier the run used.
	Scale float64 `json:"scale"`
	// BuildMS is the wall-clock engine construction time in milliseconds
	// (partitioning + indexing + metadata).
	BuildMS float64 `json:"build_ms"`
	// IndexBuildMS is the engine-measured index construction time in
	// milliseconds (the paper's Table 5 number; a subset of BuildMS).
	IndexBuildMS float64 `json:"index_build_ms"`
	// SnapshotBytes is the total encoded snapshot size over all
	// partitions — what a worker fleet would persist for this dataset.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BytesPerTraj is SnapshotBytes over Trajectories: the durable
	// footprint per trajectory, points and trie included.
	BytesPerTraj float64 `json:"bytes_per_traj"`
	// ColdStartMS is the wall-clock time to decode every partition
	// snapshot (full checksum verification) and reassemble a serving
	// engine from them — restart cost, to compare against BuildMS.
	ColdStartMS float64 `json:"cold_start_ms"`
	// IngestMeanUS is the mean wall-clock microseconds per WAL-backed
	// single-trajectory insert: checksummed append, fsync, and the
	// in-memory delta apply.
	IngestMeanUS float64 `json:"ingest_mean_us"`
	// DeltaScanBaseMS and DeltaScanDeltaMS are the raw mean search
	// latencies on the SAME cold-started engine before any inserts and
	// after ~10% of the dataset streamed into unmerged delta overlays.
	// Both are means over repeated passes of the whole query workload,
	// so DeltaScanOverheadPct — their relative difference, the price
	// queries pay between merges — is computed from like-for-like
	// repeated-run means instead of two single noisy passes on
	// different engines (which used to report negative overheads).
	DeltaScanBaseMS      float64 `json:"delta_scan_base_ms"`
	DeltaScanDeltaMS     float64 `json:"delta_scan_delta_ms"`
	DeltaScanOverheadPct float64 `json:"delta_scan_overhead_pct"`
	// ReplayMS is the cold-start WAL recovery time: opening every
	// partition's log, verifying checksums, and re-applying the suffix
	// past each snapshot's watermark.
	ReplayMS float64 `json:"replay_ms"`
	// Online re-partitioning economics: a hotspot ingest stream pushes
	// occupancy skew (max/mean partition occupancy) to SkewBefore; the
	// rebalance planner's split/merge cutovers bring it to OccupancySkew
	// in RebalanceCutovers steps taking RebalanceMS total, with search
	// results verified identical before and after. The run fails unless
	// the skew reduction is at least 2x.
	OccupancySkewBefore float64 `json:"occupancy_skew_before"`
	OccupancySkew       float64 `json:"occupancy_skew"`
	RebalanceMS         float64 `json:"rebalance_ms"`
	RebalanceCutovers   int     `json:"rebalance_cutovers"`
	// Autopilot economics on a loopback 3-worker cluster: a read workload
	// aimed at one member's geometry runs with the background autopilot
	// enabled and no operator Rebalance/PromoteReplica calls until the
	// watcher takes its first automatic action. AutopilotCutovers counts
	// those actions (cost-driven split cutovers plus read-replica
	// promotions); ReadSpread is the min/max search-call ratio over the
	// workers that served the workload — 1.0 is a perfectly uniform
	// spread (relevance pruning can exempt a worker that owns no replica
	// of the hot partitions, so only serving workers count). The phase
	// fails if the autopilot never acts or fewer than two workers serve.
	AutopilotCutovers int     `json:"autopilot_cutovers"`
	ReadSpread        float64 `json:"read_spread"`
	// Serving-layer numbers from a loopback dita-serve over this
	// engine (see internal/serve): sustained queries/second under a
	// mixed repeated-query workload, the fraction answered from the
	// result cache, the p99 served latency of that phase, and the
	// fraction of an overload burst shed with typed 429s.
	ServeQPS    float64          `json:"serve_qps"`
	CacheHitPct float64          `json:"cache_hit_pct"`
	ShedPct     float64          `json:"shed_pct"`
	P99ServedMS float64          `json:"p99_served_ms"`
	Workloads   []WorkloadReport `json:"workloads"`
}

// WorkloadReport is one workload's latency percentiles and funnel.
type WorkloadReport struct {
	// Workload is "search", "knn", or "join".
	Workload string  `json:"workload"`
	Tau      float64 `json:"tau,omitempty"`
	K        int     `json:"k,omitempty"`
	Latency  Latency `json:"latency"`
	// Funnel is the pruning funnel summed over the workload's queries.
	Funnel obs.Funnel `json:"funnel"`
	// Results is the total answer count across the workload.
	Results int `json:"results"`
}

// Latency summarizes a set of per-query wall-clock times. Percentiles
// use the nearest-rank method on the sorted samples.
type Latency struct {
	Queries int     `json:"queries"`
	MeanMS  float64 `json:"mean_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

func summarize(samples []time.Duration) Latency {
	if len(samples) == 0 {
		return Latency{}
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	// Nearest-rank percentile: ceil(p·n) th smallest sample.
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Latency{
		Queries: len(sorted),
		MeanMS:  ms(sum / time.Duration(len(sorted))),
		P50MS:   ms(rank(0.50)),
		P95MS:   ms(rank(0.95)),
		P99MS:   ms(rank(0.99)),
		MaxMS:   ms(sorted[len(sorted)-1]),
	}
}

// Bench runs the standard benchmark workloads — threshold search at
// DefaultTau, kNN at k=10, and a self-join over a Scale-reduced subset —
// against one preset dataset and returns the machine-readable report.
// Unlike the figure/table experiments, times here are wall clock (the
// report tracks real per-query latency, not simulated makespans).
func Bench(kind string, cfg Config) (*BenchReport, error) {
	cfg = cfg.sanitized()
	d := cfg.dataset(kind)
	m := measure.DTW{}
	opts := engineOpts(m, cfg.Workers)
	opts.VerifyParallelism = cfg.VerifyParallelism

	buildStart := time.Now()
	e, err := core.NewEngine(d, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: bench %s: %w", kind, err)
	}
	rep := &BenchReport{
		Name:         kind,
		Trajectories: d.Len(),
		Workers:      cfg.Workers,
		Seed:         cfg.Seed,
		Parallelism:  e.VerifyParallelism(),
		Scale:        cfg.Scale,
		BuildMS:      float64(time.Since(buildStart).Microseconds()) / 1000,
		IndexBuildMS: float64(e.BuildTime.Microseconds()) / 1000,
	}

	// Persistence economics: encode every partition's snapshot (the
	// durable footprint a worker fleet would write), then measure a cold
	// start — decode with full verification and reassemble an engine.
	images := make([][]byte, 0, len(e.Partitions()))
	for _, p := range e.Partitions() {
		img := snap.Encode(e.ExportSnapshot(d.Name, p))
		rep.SnapshotBytes += int64(len(img))
		images = append(images, img)
	}
	if d.Len() > 0 {
		rep.BytesPerTraj = float64(rep.SnapshotBytes) / float64(d.Len())
	}
	coldStart := time.Now()
	snaps := make([]*snap.Snapshot, len(images))
	for i, img := range images {
		s, err := snap.Decode(img)
		if err != nil {
			return nil, fmt.Errorf("exp: bench %s: snapshot decode: %w", kind, err)
		}
		snaps[i] = s
	}
	cold, err := core.NewEngineFromSnapshots(snaps, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: bench %s: cold start: %w", kind, err)
	}
	rep.ColdStartMS = float64(time.Since(coldStart).Microseconds()) / 1000
	if cold.Dataset().Len() != d.Len() {
		return nil, fmt.Errorf("exp: bench %s: cold start restored %d trajectories, want %d",
			kind, cold.Dataset().Len(), d.Len())
	}

	qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)

	// Threshold search.
	var lat []time.Duration
	var funnel obs.Funnel
	results := 0
	for _, q := range qs {
		var st core.SearchStats
		qStart := time.Now()
		hits := e.Search(q, DefaultTau, &st)
		lat = append(lat, time.Since(qStart))
		funnel.Merge(st.Funnel)
		results += len(hits)
	}
	rep.Workloads = append(rep.Workloads, WorkloadReport{
		Workload: "search", Tau: DefaultTau,
		Latency: summarize(lat), Funnel: funnel, Results: results,
	})

	// kNN.
	const k = 10
	lat, funnel, results = nil, obs.Funnel{}, 0
	for _, q := range qs {
		var st core.SearchStats
		qStart := time.Now()
		hits := e.SearchKNNStats(q, k, &st)
		lat = append(lat, time.Since(qStart))
		funnel.Merge(st.Funnel)
		results += len(hits)
	}
	rep.Workloads = append(rep.Workloads, WorkloadReport{
		Workload: "knn", K: k,
		Latency: summarize(lat), Funnel: funnel, Results: results,
	})

	// Self-join on a join-sized subset (a full-cardinality self-join would
	// dwarf the rest of the run).
	jd := cfg.joinData(kind)
	je, err := core.NewEngine(jd, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: bench %s join: %w", kind, err)
	}
	var js core.JoinStats
	jStart := time.Now()
	pairs := je.Join(je, DefaultTau, core.DefaultJoinOptions(), &js)
	rep.Workloads = append(rep.Workloads, WorkloadReport{
		Workload: "join", Tau: DefaultTau,
		Latency: summarize([]time.Duration{time.Since(jStart)}),
		Funnel:  js.Funnel, Results: len(pairs),
	})

	// Streaming-ingest economics: WAL-backed insert latency, the
	// delta-overlay scan penalty, and cold-start replay — against a
	// disposable store so the bench leaves nothing behind.
	if err := benchIngest(rep, d, images, opts, qs); err != nil {
		return nil, fmt.Errorf("exp: bench %s: ingest: %w", kind, err)
	}

	// Online re-partitioning economics: hotspot-skewed ingest, then the
	// planner's cutovers, with answers verified identical across them.
	if err := benchRebalance(rep, d, images, opts, qs); err != nil {
		return nil, fmt.Errorf("exp: bench %s: rebalance: %w", kind, err)
	}

	// Autopilot economics: a skewed read workload on a loopback worker
	// fleet, with the background watcher — not an operator — deciding
	// when to split or promote.
	if err := benchAutopilot(rep, d); err != nil {
		return nil, fmt.Errorf("exp: bench %s: autopilot: %w", kind, err)
	}

	// Serving-layer economics: a loopback dita-serve over the built
	// engine — sustained QPS, cache hit rate, served p99, and the shed
	// fraction under a starved admission budget.
	if err := benchServe(rep, e, kind, qs); err != nil {
		return nil, fmt.Errorf("exp: bench %s: serve: %w", kind, err)
	}
	return rep, nil
}

// benchRebalance measures the online STR re-partitioning path on an
// engine cold-started from the encoded snapshots: a hotspot ingest
// stream (one member's geometry with a per-clone jitter, so routing
// concentrates the writes while STR cuts can still separate them) skews
// one partition well past the planner bound; Rebalance then re-cuts the
// layout until balanced. The search workload must return identical
// results before and after the cutovers — a rebalance moves data, never
// changes answers — and the skew must drop at least 2x, or the bench
// run fails rather than report numbers for a broken planner.
func benchRebalance(rep *BenchReport, d *traj.Dataset, images [][]byte, opts core.Options, qs []*traj.T) error {
	if d.Len() == 0 {
		return nil
	}
	snaps := make([]*snap.Snapshot, len(images))
	for i, img := range images {
		s, err := snap.Decode(img)
		if err != nil {
			return err
		}
		snaps[i] = s
	}
	e, err := core.NewEngineFromSnapshots(snaps, opts)
	if err != nil {
		return err
	}
	if _, err := e.EnableIngest(core.IngestConfig{MergeBytes: 1 << 30}); err != nil {
		return err
	}
	defer e.CloseIngest()
	// Hotspot size: enough clones to dominate one partition's occupancy
	// on every preset, bounded so the phase stays cheap at scale.
	n := d.Len() / 4
	if n < 64 {
		n = 64
	}
	if n > 1024 {
		n = 1024
	}
	hot := d.Trajs[0]
	const idBase = 1 << 29
	for i := 0; i < n; i++ {
		pts := make([]geom.Point, len(hot.Points))
		off := float64(i) * 1e-7
		for pi, p := range hot.Points {
			pts[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
		}
		if err := e.Insert(&traj.T{ID: idBase + i, Points: pts}); err != nil {
			return err
		}
	}
	answers := func() map[int]int {
		out := map[int]int{}
		for qi, q := range qs {
			for _, h := range e.Search(q, DefaultTau, nil) {
				out[qi*1000003+h.Traj.ID]++
			}
		}
		return out
	}
	before := answers()
	_, _, skewBefore := e.OccupancySkew()
	rep.OccupancySkewBefore = skewBefore

	start := time.Now()
	steps, _, err := e.Rebalance(core.RebalancePolicy{})
	if err != nil {
		return err
	}
	rep.RebalanceMS = float64(time.Since(start).Microseconds()) / 1000
	rep.RebalanceCutovers = len(steps)
	_, _, skewAfter := e.OccupancySkew()
	rep.OccupancySkew = skewAfter

	if len(steps) == 0 {
		return fmt.Errorf("planner took no action at skew %.2f", skewBefore)
	}
	if skewAfter*2 > skewBefore {
		return fmt.Errorf("skew reduced %.2f -> %.2f, want >= 2x", skewBefore, skewAfter)
	}
	after := answers()
	if len(after) != len(before) {
		return fmt.Errorf("rebalance changed answer count: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			return fmt.Errorf("rebalance changed search answers (key %d: %d -> %d)", k, v, after[k])
		}
	}
	return nil
}

// benchAutopilot measures the rebalancing autopilot end to end on a
// loopback 3-worker cluster: dispatch a bounded slice of the dataset,
// aim every read at the first member's geometry (the same hotspot shape
// benchRebalance ingests), and let the background watcher — cost-aware
// planner plus read-replica promotion, no operator calls — take its
// first automatic action. Reports the action count and how evenly the
// rotated replica order spread the reads across the fleet.
func benchAutopilot(rep *BenchReport, d *traj.Dataset) error {
	if d.Len() == 0 {
		return nil
	}
	// A bounded slice keeps the phase cheap at scale; the autopilot's
	// behavior is layout-driven, not cardinality-driven.
	sub := d
	if sub.Len() > 1200 {
		sub = &traj.Dataset{Name: d.Name, Trajs: d.Trajs[:1200]}
	}
	var workers []*dnet.Worker
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	var addrs []string
	for i := 0; i < 3; i++ {
		w := dnet.NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			return err
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	reg := obs.New()
	cfg := dnet.DefaultNetConfig()
	cfg.Replicas = 2
	cfg.Obs = reg
	cfg.Autopilot = dnet.AutopilotConfig{
		Interval: 25 * time.Millisecond,
		Cooldown: 50 * time.Millisecond,
		// Quiet byte paths: the phase measures the read-cost signal, so
		// geometry-driven splits and merges must not claim the action.
		Policy: core.RebalancePolicy{SkewBound: 50, CostBound: 2, MergeFraction: 0.001},
	}
	c, err := dnet.Connect(addrs, cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Dispatch("bench", sub); err != nil {
		return err
	}

	hot := sub.Trajs[0].Points
	hotQs := make([]*traj.T, 12)
	for i := range hotQs {
		pts := make([]geom.Point, len(hot))
		off := float64(i) * 1e-7
		for pi, p := range hot {
			pts[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
		}
		hotQs[i] = &traj.T{ID: (1 << 29) + i, Points: pts}
	}
	actions := func() int64 {
		return reg.Counter("coord_autopilot_cutovers_total").Value() +
			reg.Counter("coord_autopilot_promotions_total").Value()
	}
	deadline := time.Now().Add(30 * time.Second)
	for actions() == 0 && time.Now().Before(deadline) {
		for _, q := range hotQs {
			if _, err := c.Search("bench", q, DefaultTau); err != nil {
				return err
			}
		}
	}
	rep.AutopilotCutovers = int(actions())
	if rep.AutopilotCutovers == 0 {
		return fmt.Errorf("autopilot took no automatic action under a skewed read workload")
	}
	// Give the post-action layout — promoted replicas, fresh split
	// pieces — a few more rounds to serve before measuring the spread.
	for r := 0; r < 5; r++ {
		for _, q := range hotQs {
			if _, err := c.Search("bench", q, DefaultTau); err != nil {
				return err
			}
		}
	}
	stats, err := c.WorkerStats()
	if err != nil {
		return err
	}
	var minCalls, maxCalls int64 = -1, 0
	busy := 0
	for _, s := range stats {
		if s.SearchCalls == 0 {
			// Relevance pruning can exempt a worker that owns no replica
			// of the hot partitions; spread is over the serving set.
			continue
		}
		busy++
		if minCalls < 0 || s.SearchCalls < minCalls {
			minCalls = s.SearchCalls
		}
		if s.SearchCalls > maxCalls {
			maxCalls = s.SearchCalls
		}
	}
	if busy >= 2 && maxCalls > 0 {
		rep.ReadSpread = float64(minCalls) / float64(maxCalls)
	}
	if busy < 2 {
		return fmt.Errorf("skewed reads hit only %d worker(s), want >= 2", busy)
	}
	return nil
}

// benchIngest measures streaming ingest on an engine cold-started from
// the already-encoded partition snapshots: mean per-insert wall time with
// a real fsync'd WAL, the search-latency penalty of scanning the
// resulting overlays (vs the merged-base search workload already in the
// report), and the time to replay the logs on the next cold start.
func benchIngest(rep *BenchReport, d *traj.Dataset, images [][]byte, opts core.Options, qs []*traj.T) error {
	if d.Len() == 0 || len(rep.Workloads) == 0 {
		return nil
	}
	dir, err := os.MkdirTemp("", "ditabench-wal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ws, err := wal.NewStore(dir)
	if err != nil {
		return err
	}
	restore := func() (*core.Engine, error) {
		snaps := make([]*snap.Snapshot, len(images))
		for i, img := range images {
			s, err := snap.Decode(img)
			if err != nil {
				return nil, err
			}
			snaps[i] = s
		}
		return core.NewEngineFromSnapshots(snaps, opts)
	}
	e, err := restore()
	if err != nil {
		return err
	}
	// Merges off: every insert stays in the overlay and in the log, so
	// the overhead and replay numbers measure the un-merged worst case.
	if _, err := e.EnableIngest(core.IngestConfig{WAL: ws, MergeBytes: 1 << 30}); err != nil {
		return err
	}
	// Base and overlay latencies come from the SAME engine, each a mean
	// over several full passes of the query workload. Comparing one pass
	// here against the originally-built engine's single search pass (as
	// an earlier version did) mixes two engines and two cache states and
	// regularly produced small negative "overheads".
	const overlayReps = 3
	searchMean := func() float64 {
		var lat []time.Duration
		for r := 0; r < overlayReps; r++ {
			for _, q := range qs {
				qStart := time.Now()
				e.Search(q, DefaultTau, nil)
				lat = append(lat, time.Since(qStart))
			}
		}
		return summarize(lat).MeanMS
	}
	rep.DeltaScanBaseMS = searchMean()

	// ~10% of the dataset streams in as new members (existing geometry,
	// fresh ids) so the overlay fraction is comparable across presets.
	n := d.Len() / 10
	if n < 32 {
		n = 32
	}
	if n > 2048 {
		n = 2048
	}
	const idBase = 1 << 28
	start := time.Now()
	for i := 0; i < n; i++ {
		t := d.Trajs[i%d.Len()]
		if err := e.Insert(&traj.T{ID: idBase + i, Points: t.Points}); err != nil {
			return err
		}
	}
	rep.IngestMeanUS = float64(time.Since(start).Microseconds()) / float64(n)

	// The same workload again, now paying the delta scan on every
	// partition the overlay touched.
	rep.DeltaScanDeltaMS = searchMean()
	if rep.DeltaScanBaseMS > 0 {
		rep.DeltaScanOverheadPct = (rep.DeltaScanDeltaMS - rep.DeltaScanBaseMS) / rep.DeltaScanBaseMS * 100
	}
	if err := e.CloseIngest(); err != nil {
		return err
	}

	// Cold start over the same logs: every insert must replay.
	e2, err := restore()
	if err != nil {
		return err
	}
	sum, err := e2.EnableIngest(core.IngestConfig{WAL: ws, Replay: true})
	if err != nil {
		return err
	}
	if sum.Records != n {
		return fmt.Errorf("replayed %d WAL records, want %d", sum.Records, n)
	}
	rep.ReplayMS = float64(sum.Duration.Microseconds()) / 1000
	return e2.CloseIngest()
}
