package exp

import (
	"fmt"
	"time"

	"dita/internal/baseline"
	"dita/internal/central"
	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

func init() {
	register("table1", "Worked example: point distance and DTW matrices for T1, T3", table1())
	register("table3", "Parameters (paper defaults vs this reproduction)", table3())
	register("table2", "Dataset statistics (synthetic stand-ins)", table2())
	register("table5", "Index build time and size, DITA vs DFT, by sample rate", table5())
	register("table7", "Centralized index build time and size: DITA vs MBE vs VP-tree", table7())
	register("fig17a", "Centralized candidates vs τ, DTW (MBE vs DITA)", fig17(measure.DTW{}, true))
	register("fig17b", "Centralized search time vs τ, DTW (MBE vs DITA)", fig17(measure.DTW{}, false))
	register("fig17c", "Centralized candidates vs τ, Fréchet (MBE, VP-tree, DITA)", fig17(measure.Frechet{}, true))
	register("fig17d", "Centralized search time vs τ, Fréchet (MBE, VP-tree, DITA)", fig17(measure.Frechet{}, false))
}

// table1 prints the paper's worked example matrices for T1 and T3.
func table1() Runner {
	return func(cfg Config) (*Table, error) {
		t1 := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}
		t3 := []geom.Point{{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 3}, {X: 4, Y: 5}, {X: 4, Y: 6}, {X: 5, Y: 6}}
		cols := []string{"matrix", "i"}
		for j := 1; j <= len(t3); j++ {
			cols = append(cols, fmt.Sprintf("t3_%d", j))
		}
		t := &Table{ID: "table1", Title: "distance and DTW matrices for T1 and T3 (paper Table 1)", Columns: cols}
		// Point-to-point distances.
		for i, p := range t1 {
			row := []string{"dist", fmt.Sprintf("t1_%d", i+1)}
			for _, q := range t3 {
				row = append(row, fmt.Sprintf("%.2f", p.Dist(q)))
			}
			t.Rows = append(t.Rows, row)
		}
		// DTW prefix matrix.
		for i := 1; i <= len(t1); i++ {
			row := []string{"DTW", fmt.Sprintf("t1_%d", i)}
			for j := 1; j <= len(t3); j++ {
				row = append(row, fmt.Sprintf("%.2f", measure.DTW{}.Distance(t1[:i], t3[:j])))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// table3 prints the parameter grid (the paper's Table 3) next to the
// laptop-scale values this reproduction uses.
func table3() Runner {
	return func(cfg Config) (*Table, error) {
		t := &Table{ID: "table3", Title: "parameters (paper Table 3 vs this reproduction)",
			Columns: []string{"parameter", "paper values (default)", "reproduction values (default)"}}
		t.Rows = [][]string{
			{"threshold τ", "0.001..0.005 (0.003)", "0.001..0.005 (0.003)"},
			{"NG", "32, 64*, 128*, 256 (per dataset)", "2..32 (6)"},
			{"NL", "16, 32*, 64", "4, 8, 16 (align 16 / pivot 4)"},
			{"pivot selection", "Inflection, Neighbor*, First/Last", "same"},
			{"pivot size K", "2..6 (4 Beijing, 5 Chengdu)", "2..6 (4)"},
			{"# of cores", "64..256", fmt.Sprintf("1..8 workers (%d)", cfg.Workers)},
			{"dataset size", "0.25..1.0 of 11-141M trajs", fmt.Sprintf("0.25..1.0 of %d/%d/%d trajs", cfg.n(cfg.NBeijing), cfg.n(cfg.NChengdu), cfg.n(cfg.NOSM))},
			{"queries", "1000", fmt.Sprintf("%d", cfg.Queries)},
		}
		return t, nil
	}
}

// table2 reports the synthetic datasets' statistics next to the paper's
// Table 2 targets.
func table2() Runner {
	return func(cfg Config) (*Table, error) {
		t := &Table{ID: "table2", Title: "dataset statistics (synthetic stand-ins; paper targets in parentheses)",
			Columns: []string{"dataset", "cardinality", "avgLen", "minLen", "maxLen", "size(MB)"}}
		rows := []struct {
			d      *traj.Dataset
			target string
		}{
			{cfg.dataset("beijing"), "Beijing: avg 22.2, [7,112]"},
			{cfg.dataset("chengdu"), "Chengdu: avg 37.4, [10,209]"},
			{cfg.dataset("osm"), "OSM: avg ~114, [9,3000]"},
		}
		for _, r := range rows {
			s := r.d.Stats()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s (%s)", s.Name, r.target),
				fmt.Sprintf("%d", s.Cardinality),
				fmt.Sprintf("%.1f", s.AvgLen),
				fmt.Sprintf("%d", s.MinLen),
				fmt.Sprintf("%d", s.MaxLen),
				fmtBytes(s.SizeBytes),
			})
		}
		return t, nil
	}
}

// table5 reports index build time and sizes for DITA and DFT across sample
// rates.
func table5() Runner {
	return func(cfg Config) (*Table, error) {
		t := &Table{ID: "table5", Title: "indexing time and size by sample rate (Beijing-like and Chengdu-like)",
			Columns: []string{"method", "rate", "time(s)", "global(KB)", "local(MB)"}}
		for _, kind := range []string{"beijing", "chengdu"} {
			full := cfg.dataset(kind)
			for _, rate := range []float64{0.25, 0.5, 0.75, 1.0} {
				d := full.Sample(rate)
				e, err := core.NewEngine(d, engineOpts(measure.DTW{}, cfg.Workers))
				if err != nil {
					return nil, err
				}
				g, l := e.IndexSizeBytes()
				t.Rows = append(t.Rows, []string{
					"DITA(" + kind + ")", fmt.Sprintf("%.2f", rate), fmtSec(e.BuildTime), fmtKB(g), fmtBytes(l),
				})
			}
			// DFT at full rate only, as in the paper's Table 5.
			start := time.Now()
			f := baseline.NewDFT(full, measure.DTW{}, expCluster(cfg.Workers), 2*cfg.Workers)
			buildTime := time.Since(start)
			g, l := f.IndexSizeBytes()
			t.Rows = append(t.Rows, []string{
				"DFT(" + kind + ")", "1.00", fmtSec(buildTime), fmtKB(g), fmtBytes(l),
			})
		}
		return t, nil
	}
}

// tinyChengdu is the Appendix C "Chengdu(tiny)" stand-in.
func tinyChengdu(cfg Config) *traj.Dataset {
	n := cfg.n(cfg.NChengdu) / 4
	if n < 50 {
		n = 50
	}
	return gen.Generate(gen.ChengduLike(n, cfg.Seed+7))
}

// table7 reports centralized index build time and size.
func table7() Runner {
	return func(cfg Config) (*Table, error) {
		d := tinyChengdu(cfg)
		t := &Table{ID: "table7", Title: fmt.Sprintf("centralized indexing on Chengdu(tiny)-like (%d trajs)", d.Len()),
			Columns: []string{"method", "time(s)", "size(MB)"}}
		e, err := core.NewEngine(d, engineOpts(measure.Frechet{}, 1))
		if err != nil {
			return nil, err
		}
		g, l := e.IndexSizeBytes()
		t.Rows = append(t.Rows, []string{"DITA", fmtSec(e.BuildTime), fmtBytes(g + l)})
		mbe := central.NewMBE(d, measure.Frechet{}, central.DefaultEnvelopeSize)
		t.Rows = append(t.Rows, []string{"MBE", fmtSec(mbe.BuildTime), fmtBytes(mbe.SizeBytes())})
		vp := central.NewVPTree(d, measure.Frechet{}, cfg.Seed)
		t.Rows = append(t.Rows, []string{"VP-Tree", fmtSec(vp.BuildTime), fmtBytes(vp.SizeBytes())})
		return t, nil
	}
}

// fig17 compares centralized candidates (or latency) across MBE, VP-tree
// (Fréchet only) and centralized DITA.
func fig17(m measure.Measure, candidates bool) Runner {
	return func(cfg Config) (*Table, error) {
		d := tinyChengdu(cfg)
		qs := gen.Queries(d, cfg.Queries/2+1, cfg.Seed+11)
		isFrechet := m.Accumulation() == measure.AccumMax
		cols := []string{"tau", "MBE"}
		if isFrechet {
			cols = append(cols, "VP-Tree")
		}
		cols = append(cols, "DITA")
		what := "search time (ms/query)"
		if candidates {
			what = "# candidates per query"
		}
		t := &Table{ID: "fig17-" + m.Name(), Title: fmt.Sprintf("centralized %s vs τ (%s)", what, m.Name()), Columns: cols}

		mbe := central.NewMBE(d, m, central.DefaultEnvelopeSize)
		var vp *central.VPTree
		if isFrechet {
			vp = central.NewVPTree(d, m, cfg.Seed)
		}
		e, err := core.NewEngine(d, engineOpts(m, 1))
		if err != nil {
			return nil, err
		}
		for _, tau := range Taus {
			row := []string{fmt.Sprintf("%.3f", tau)}
			// MBE.
			var mbeCands int
			start := time.Now()
			for _, q := range qs {
				var st central.Stats
				mbe.Search(q, tau, &st)
				mbeCands += st.Candidates
			}
			mbeMS := float64(time.Since(start).Microseconds()) / 1000 / float64(len(qs))
			if candidates {
				row = append(row, fmt.Sprintf("%d", mbeCands/len(qs)))
			} else {
				row = append(row, fmtMS(mbeMS))
			}
			// VP-tree.
			if isFrechet {
				var vpCands int
				start = time.Now()
				for _, q := range qs {
					var st central.Stats
					vp.Search(q, tau, &st)
					vpCands += st.Candidates
				}
				vpMS := float64(time.Since(start).Microseconds()) / 1000 / float64(len(qs))
				if candidates {
					row = append(row, fmt.Sprintf("%d", vpCands/len(qs)))
				} else {
					row = append(row, fmtMS(vpMS))
				}
			}
			// Centralized DITA: candidates = trajectories reaching exact
			// verification (same definition as the baselines').
			var ditaCands int
			e.Cluster().Reset()
			start = time.Now()
			for _, q := range qs {
				var st core.SearchStats
				e.Search(q, tau, &st)
				ditaCands += st.Verified
			}
			ditaMS := float64(time.Since(start).Microseconds()) / 1000 / float64(len(qs))
			if candidates {
				row = append(row, fmt.Sprintf("%d", ditaCands/len(qs)))
			} else {
				row = append(row, fmtMS(ditaMS))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}
