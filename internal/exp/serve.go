package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/serve"
	"dita/internal/traj"
)

// Serve-phase wire bodies. With omitempty a single struct covers both
// query endpoints without tripping the server's DisallowUnknownFields:
// search sends {query, tau}, kNN sends {query, k}.
type serveQueryBody struct {
	Query [][2]float64 `json:"query"`
	Tau   float64      `json:"tau,omitempty"`
	K     int          `json:"k,omitempty"`
}

type serveIngestBody struct {
	ID     int          `json:"id"`
	Points [][2]float64 `json:"points"`
}

func rawPts(ps []geom.Point) [][2]float64 {
	out := make([][2]float64, len(ps))
	for i, p := range ps {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

// benchServe fronts the bench engine with a loopback dita-serve (real
// TCP, real JSON) and measures the serving layer itself. Phase one
// drives a repeated mixed workload — four passes over the query set
// with kNN sprinkled in and one ingest after the first pass so the
// numbers include a full cache invalidation — through 8 concurrent
// clients: ServeQPS, CacheHitPct, and P99ServedMS come from it. Phase
// two points a fresh server with a 1µs cost budget (only the
// work-conserving slot runs) at a concurrent burst of bypass queries:
// ShedPct is the fraction refused with a typed 429.
func benchServe(rep *BenchReport, e *core.Engine, kind string, qs []*traj.T) error {
	if len(qs) == 0 {
		return nil
	}
	// Memory-only ingest: the serve phase needs a writable engine but
	// must leave nothing behind.
	if _, err := e.EnableIngest(core.IngestConfig{}); err != nil {
		return err
	}
	defer func() { _ = e.CloseIngest() }()
	backend := &serve.EngineBackend{E: e, Dataset: kind}

	start := func(budgetUS int64) (*serve.Server, *http.Server, string, error) {
		s, err := serve.New(serve.Config{
			Backend:      backend,
			Dataset:      kind,
			Measure:      "DTW",
			CostBudgetUS: budgetUS,
		})
		if err != nil {
			return nil, nil, "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, "", err
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return s, hs, "http://" + ln.Addr().String(), nil
	}
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(url string, body any) (int, error) {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}

	// --- Phase one: sustained mixed traffic, no shedding expected. ---
	srv, hs, base, err := start(0)
	if err != nil {
		return err
	}
	defer hs.Close()

	type job struct {
		path string
		body any
	}
	var jobs []job
	const passes = 4
	for pass := 0; pass < passes; pass++ {
		for qi, q := range qs {
			jobs = append(jobs, job{"/v1/search", serveQueryBody{Query: rawPts(q.Points), Tau: DefaultTau}})
			if qi%4 == 0 {
				jobs = append(jobs, job{"/v1/knn", serveQueryBody{Query: rawPts(q.Points), K: 10}})
			}
		}
		if pass == 0 {
			// One write between passes: the single-epoch dev backend
			// invalidates the whole cache, so the measured hit rate pays
			// for a real re-warm instead of assuming a read-only world.
			jobs = append(jobs, job{"/v1/ingest", serveIngestBody{ID: 1 << 29, Points: rawPts(qs[0].Points)}})
		}
	}

	var mu sync.Mutex
	var lat []time.Duration
	var completed int
	var firstErr error
	jobCh := make(chan job)
	var wg sync.WaitGroup
	phaseStart := time.Now()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				t0 := time.Now()
				status, err := post(base+j.path, j.body)
				d := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
				case status != http.StatusOK:
					if firstErr == nil {
						firstErr = fmt.Errorf("serve %s: unexpected status %d", j.path, status)
					}
				default:
					completed++
					lat = append(lat, d)
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	elapsed := time.Since(phaseStart)
	if firstErr != nil {
		return firstErr
	}
	if elapsed > 0 {
		rep.ServeQPS = float64(completed) / elapsed.Seconds()
	}
	rep.P99ServedMS = summarize(lat).P99MS
	if st := srv.CacheStats(); st.Hits+st.Misses > 0 {
		rep.CacheHitPct = float64(st.Hits) / float64(st.Hits+st.Misses) * 100
	}

	// --- Phase two: overload probe against a starved budget. ---
	_, hsB, baseB, err := start(1)
	if err != nil {
		return err
	}
	defer hsB.Close()
	const burst, rounds = 32, 2
	var shed, total, unexpected int
	for r := 0; r < rounds; r++ {
		var bw sync.WaitGroup
		for i := 0; i < burst; i++ {
			q := qs[(r*burst+i)%len(qs)]
			bw.Add(1)
			go func(q *traj.T) {
				defer bw.Done()
				// Bypass: cache hits and coalesced waiters skip admission,
				// which would let repeats dodge the gate being probed.
				status, err := post(baseB+"/v1/search?cache=bypass",
					serveQueryBody{Query: rawPts(q.Points), Tau: DefaultTau})
				mu.Lock()
				total++
				switch {
				case err != nil || (status != http.StatusOK && status != http.StatusTooManyRequests):
					unexpected++
				case status == http.StatusTooManyRequests:
					shed++
				}
				mu.Unlock()
			}(q)
		}
		bw.Wait()
	}
	if unexpected > 0 {
		return fmt.Errorf("serve overload probe: %d responses were neither 200 nor typed 429", unexpected)
	}
	if total > 0 {
		rep.ShedPct = float64(shed) / float64(total) * 100
	}
	return nil
}
