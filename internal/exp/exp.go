// Package exp reproduces the paper's evaluation (Section 7 and Appendices
// B–C): every figure and table has a driver that regenerates its rows — the
// same series, the same sweeps — on the synthetic stand-in datasets at a
// configurable scale. cmd/ditabench runs them by id; root-level
// testing.B benchmarks wrap reduced sweeps.
//
// Times reported for distributed runs are the cluster substrate's
// *simulated* makespans (per-worker virtual clocks plus modelled Gigabit
// transfers), which is what makes worker counts beyond the host's physical
// cores meaningful; index-build times are wall clock.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
	"dita/internal/trie"
)

// Config scales the experiments. Zero fields take defaults.
type Config struct {
	// NBeijing, NChengdu, NOSM are dataset cardinalities at Scale 1.0.
	NBeijing, NChengdu, NOSM int
	// NJoin is the self-join dataset cardinality at Scale 1.0.
	NJoin int
	// Queries is the search-workload size (the paper uses 1,000).
	Queries int
	// Workers is the default simulated core count.
	Workers int
	// Scale multiplies all cardinalities (quick runs: 0.1).
	Scale float64
	// Seed drives all generation.
	Seed int64
	// VerifyParallelism bounds each partition's verification goroutine
	// pool (0 = all cores, 1 = sequential). Results are identical at
	// every setting; only wall-clock changes, so the figure/table
	// experiments (simulated time) ignore it and only Bench threads it
	// through.
	VerifyParallelism int
}

// DefaultConfig returns the laptop-scale defaults documented in
// EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{
		NBeijing: 12000,
		NChengdu: 12000,
		NOSM:     4000,
		NJoin:    2500,
		Queries:  100,
		Workers:  8,
		Scale:    1.0,
		Seed:     42,
	}
}

func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.NBeijing <= 0 {
		c.NBeijing = d.NBeijing
	}
	if c.NChengdu <= 0 {
		c.NChengdu = d.NChengdu
	}
	if c.NOSM <= 0 {
		c.NOSM = d.NOSM
	}
	if c.NJoin <= 0 {
		c.NJoin = d.NJoin
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

func (c Config) n(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 50 {
		n = 50
	}
	return n
}

// Taus is the paper's threshold sweep (Table 3); 0.001 is roughly 111 m.
var Taus = []float64{0.001, 0.002, 0.003, 0.004, 0.005}

// DefaultTau is the sweep midpoint used by the ablations.
const DefaultTau = 0.003

// Table is one reproduced figure/table: column headers and formatted rows.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// TSV renders the table as tab-separated values.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner is an experiment driver.
type Runner func(cfg Config) (*Table, error)

var registry = map[string]struct {
	title string
	run   Runner
}{}

func register(id, title string, run Runner) {
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's description.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r.run(cfg.sanitized())
}

// --- shared builders -------------------------------------------------------

// dataset materializes one of the three preset datasets at the config's
// scale. kind is "beijing", "chengdu" or "osm"; "default" is an alias for
// the Beijing-like preset (the BENCH_default.json perf-tracking baseline).
func (c Config) dataset(kind string) *traj.Dataset {
	switch kind {
	case "default":
		return gen.Generate(gen.BeijingLike(c.n(c.NBeijing), c.Seed))
	case "beijing":
		return gen.Generate(gen.BeijingLike(c.n(c.NBeijing), c.Seed))
	case "chengdu":
		return gen.Generate(gen.ChengduLike(c.n(c.NChengdu), c.Seed+1))
	case "osm":
		return gen.Generate(gen.OSMLike(c.n(c.NOSM), c.Seed+2))
	}
	panic("exp: unknown dataset kind " + kind)
}

// expCluster builds the experiments' substrate: Gigabit bandwidth with a
// per-message latency scaled down with the datasets. The paper's testbed
// pairs ~10 GB datasets with 0.1 ms switch latency; our datasets are about
// three orders of magnitude smaller, so the latency is scaled to keep the
// compute-to-network ratio (and therefore the relative orderings)
// comparable.
func expCluster(workers int) *cluster.Cluster {
	cfg := cluster.DefaultConfig(workers)
	cfg.LatencyPerMessage = 2 * time.Microsecond
	return cluster.New(cfg)
}

// engineOpts returns DITA engine options scaled for the dataset size.
func engineOpts(m measure.Measure, workers int) core.Options {
	o := core.DefaultOptions()
	o.NG = 6
	o.Measure = m
	o.Trie = trie.DefaultConfig()
	o.Trie.NLAlign = 16
	o.Trie.NLPivot = 4
	// The paper stops splitting trie nodes at 16 trajectories on datasets
	// of 10M+ (partitions of thousands); our partitions hold ~50-300, so
	// the equivalent depth needs a smaller cut-off or the pivot levels
	// never engage.
	o.Trie.MinNode = 2
	o.Cluster = expCluster(workers)
	return o
}

// measureReps is the number of repetitions per timing; the minimum is
// reported, which suppresses GC and scheduler noise on small simulated
// workloads (standard micro-benchmark practice).
const measureReps = 3

// minElapsed runs the workload measureReps times and returns the smallest
// simulated makespan.
func minElapsed(cl *cluster.Cluster, run func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < measureReps; r++ {
		cl.Reset()
		run()
		if e := cl.Elapsed(); e < best {
			best = e
		}
	}
	return best
}

// msPerQuery runs the batch and returns simulated elapsed milliseconds per
// query (minimum over repetitions).
func msPerQuery(cl *cluster.Cluster, n int, run func()) float64 {
	if n == 0 {
		return 0
	}
	return float64(minElapsed(cl, run).Microseconds()) / 1000 / float64(n)
}

// fmtMS formats milliseconds with adaptive precision.
func fmtMS(ms float64) string {
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.2f", ms)
	default:
		return fmt.Sprintf("%.4f", ms)
	}
}

// fmtSec formats a duration in seconds.
func fmtSec(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// fmtBytes renders a byte count as MB with two decimals.
func fmtBytes(b int) string { return fmt.Sprintf("%.2f", float64(b)/1e6) }

// fmtKB renders a byte count as KB with one decimal (for the small global
// index).
func fmtKB(b int) string { return fmt.Sprintf("%.1f", float64(b)/1e3) }
