package exp

import (
	"strings"
	"testing"

	"dita/internal/cluster"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		NBeijing: 300, NChengdu: 300, NOSM: 150, NJoin: 150,
		Queries: 8, Workers: 2, Scale: 1, Seed: 7,
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure and table from DESIGN.md's per-experiment index must be
	// registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table7",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"fig11a", "fig11b", "fig11c", "fig11d",
		"fig12a", "fig12b", "fig12c", "fig12d",
		"fig13a", "fig13b",
		"fig14a", "fig14b",
		"fig15a", "fig15b",
		"fig16a", "fig16b", "fig16c", "fig16d",
		"fig17a", "fig17b", "fig17c", "fig17d",
	}
	ids := map[string]bool{}
	for _, id := range IDs() {
		ids[id] = true
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) < len(want) {
		t.Errorf("registry has %d experiments, want at least %d", len(ids), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", tinyConfig()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// Smoke-run a representative subset at tiny scale; each must produce a
// well-formed table (full runs live in cmd/ditabench).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short")
	}
	for _, id := range []string{"table1", "table2", "fig7a", "fig9a", "fig12a", "fig13a", "fig14a", "fig16a", "fig17a", "fig17c", "table4", "table5", "table7"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, tinyConfig())
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tbl.Rows) == 0 || len(tbl.Columns) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Columns) {
					t.Fatalf("%s: ragged row %v vs columns %v", id, r, tbl.Columns)
				}
			}
			if !strings.Contains(tbl.String(), tbl.Columns[0]) {
				t.Fatalf("%s: String() missing header", id)
			}
			if !strings.Contains(tbl.TSV(), "\t") {
				t.Fatalf("%s: TSV() malformed", id)
			}
		})
	}
}

// Table 1's DTW matrix must end at 5.41 (the paper's value).
func TestTable1Value(t *testing.T) {
	tbl, err := Run("table1", tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if got := last[len(last)-1]; got != "5.41" {
		t.Errorf("DTW(T1,T3) cell = %s, want 5.41", got)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if got := fmtMS(250.4); got != "250" {
		t.Errorf("fmtMS(250.4) = %q", got)
	}
	if got := fmtMS(3.14159); got != "3.14" {
		t.Errorf("fmtMS(3.14) = %q", got)
	}
	if got := fmtMS(0.12345); got != "0.1235" && got != "0.1234" {
		t.Errorf("fmtMS(0.12345) = %q", got)
	}
	if got := fmtBytes(2_500_000); got != "2.50" {
		t.Errorf("fmtBytes = %q", got)
	}
}

func TestConfigSanitization(t *testing.T) {
	c := Config{}.sanitized()
	d := DefaultConfig()
	if c.NBeijing != d.NBeijing || c.Workers != d.Workers || c.Scale != 1 || c.Seed != d.Seed {
		t.Errorf("zero config not defaulted: %+v", c)
	}
	c = Config{Scale: -1, Queries: -5}.sanitized()
	if c.Scale != 1 || c.Queries != d.Queries {
		t.Errorf("negative fields not defaulted: %+v", c)
	}
	// n() floors at 50 trajectories.
	tiny := Config{Scale: 0.0001}.sanitized()
	if tiny.n(10000) != 50 {
		t.Errorf("n floor = %d", tiny.n(10000))
	}
}

func TestMinElapsedTakesMinimum(t *testing.T) {
	cl := expCluster(2)
	calls := 0
	el := minElapsed(cl, func() {
		calls++
		cl.Transfer(0, 1, 125_000*calls) // growing cost per rep
		cl.Run([]cluster.Task{{Worker: 0, Fn: func() {}}})
	})
	if calls != measureReps {
		t.Errorf("ran %d reps, want %d", calls, measureReps)
	}
	if el <= 0 {
		t.Error("minElapsed returned nothing")
	}
}
