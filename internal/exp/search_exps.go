package exp

import (
	"fmt"

	"dita/internal/baseline"
	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

func init() {
	register("fig7a", "Search time vs τ, Beijing-like (Naive/Simba/DFT/DITA, DTW)", searchVaryTau("beijing"))
	register("fig8a", "Search time vs τ, Chengdu-like (Naive/Simba/DFT/DITA, DTW)", searchVaryTau("chengdu"))
	register("fig7b", "Search scalability vs data size, Beijing-like", searchScalability("beijing"))
	register("fig8b", "Search scalability vs data size, Chengdu-like", searchScalability("chengdu"))
	register("fig7c", "Search scale-up vs workers, Beijing-like", searchScaleUp("beijing"))
	register("fig8c", "Search scale-up vs workers, Chengdu-like", searchScaleUp("chengdu"))
	register("fig7d", "Search scale-out (size+workers), Beijing-like", searchScaleOut("beijing"))
	register("fig8d", "Search scale-out (size+workers), Chengdu-like", searchScaleOut("chengdu"))
	register("fig11a", "Search time vs τ on OSM-like, DTW", searchLarge(measure.DTW{}))
	register("fig11c", "Search time vs τ on OSM-like, Fréchet", searchLarge(measure.Frechet{}))
}

// systems bundles the four compared search systems, each on its own
// cluster of the same size.
type systems struct {
	naive *baseline.Naive
	simba *baseline.Simba
	dft   *baseline.DFT
	dita  *core.Engine
}

func buildSystems(d *traj.Dataset, m measure.Measure, workers int) (*systems, error) {
	nparts := 2 * workers
	e, err := core.NewEngine(d, engineOpts(m, workers))
	if err != nil {
		return nil, err
	}
	return &systems{
		naive: baseline.NewNaive(d, m, expCluster(workers)),
		simba: baseline.NewSimba(d, m, expCluster(workers), nparts),
		dft:   baseline.NewDFT(d, m, expCluster(workers), nparts),
		dita:  e,
	}, nil
}

// measureSearch returns avg simulated ms/query for each system at tau.
func (s *systems) measureSearch(qs []*traj.T, tau float64) [4]float64 {
	var out [4]float64
	out[0] = msPerQuery(s.naive.Cluster(), len(qs), func() {
		for _, q := range qs {
			s.naive.Search(q, tau)
		}
	})
	out[1] = msPerQuery(s.simba.Cluster(), len(qs), func() {
		for _, q := range qs {
			s.simba.Search(q, tau)
		}
	})
	out[2] = msPerQuery(s.dft.Cluster(), len(qs), func() {
		for _, q := range qs {
			s.dft.Search(q, tau)
		}
	})
	out[3] = msPerQuery(s.dita.Cluster(), len(qs), func() {
		for _, q := range qs {
			s.dita.Search(q, tau, nil)
		}
	})
	return out
}

var searchCols = []string{"tau", "Naive(ms)", "Simba(ms)", "DFT(ms)", "DITA(ms)"}

func searchVaryTau(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.dataset(kind)
		qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)
		sys, err := buildSystems(d, measure.DTW{}, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t := &Table{ID: "fig-search-tau-" + kind, Title: "search time vs τ (" + d.Name + ")", Columns: searchCols}
		for _, tau := range Taus {
			ms := sys.measureSearch(qs, tau)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.3f", tau), fmtMS(ms[0]), fmtMS(ms[1]), fmtMS(ms[2]), fmtMS(ms[3]),
			})
		}
		return t, nil
	}
}

func searchScalability(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		full := cfg.dataset(kind)
		t := &Table{ID: "fig-search-scale-" + kind, Title: "search time vs data size (" + full.Name + ")",
			Columns: []string{"rate", "Naive(ms)", "Simba(ms)", "DFT(ms)", "DITA(ms)"}}
		for _, rate := range []float64{0.25, 0.5, 0.75, 1.0} {
			d := full.Sample(rate)
			qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)
			sys, err := buildSystems(d, measure.DTW{}, cfg.Workers)
			if err != nil {
				return nil, err
			}
			ms := sys.measureSearch(qs, DefaultTau)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", rate), fmtMS(ms[0]), fmtMS(ms[1]), fmtMS(ms[2]), fmtMS(ms[3]),
			})
		}
		return t, nil
	}
}

func searchScaleUp(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.dataset(kind)
		qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)
		t := &Table{ID: "fig-search-scaleup-" + kind, Title: "search time vs workers (" + d.Name + ")",
			Columns: []string{"workers", "Naive(ms)", "Simba(ms)", "DFT(ms)", "DITA(ms)"}}
		for _, w := range []int{1, 2, 4, 8} {
			sys, err := buildSystems(d, measure.DTW{}, w)
			if err != nil {
				return nil, err
			}
			ms := sys.measureSearch(qs, DefaultTau)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", w), fmtMS(ms[0]), fmtMS(ms[1]), fmtMS(ms[2]), fmtMS(ms[3]),
			})
		}
		return t, nil
	}
}

func searchScaleOut(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		full := cfg.dataset(kind)
		t := &Table{ID: "fig-search-scaleout-" + kind, Title: "search scale-out (" + full.Name + ")",
			Columns: []string{"scale", "Naive(ms)", "Simba(ms)", "DFT(ms)", "DITA(ms)"}}
		steps := []struct {
			rate float64
			w    int
		}{{0.25, 1}, {0.5, 2}, {0.75, 4}, {1.0, 8}}
		for _, st := range steps {
			d := full.Sample(st.rate)
			qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)
			sys, err := buildSystems(d, measure.DTW{}, st.w)
			if err != nil {
				return nil, err
			}
			ms := sys.measureSearch(qs, DefaultTau)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f,%dw", st.rate, st.w), fmtMS(ms[0]), fmtMS(ms[1]), fmtMS(ms[2]), fmtMS(ms[3]),
			})
		}
		return t, nil
	}
}

func searchLarge(m measure.Measure) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.dataset("osm")
		qs := gen.Queries(d, cfg.Queries/2+1, cfg.Seed+10)
		sys, err := buildSystems(d, m, cfg.Workers)
		if err != nil {
			return nil, err
		}
		t := &Table{ID: "fig-search-osm-" + m.Name(), Title: "search time vs τ on OSM-like (" + m.Name() + ")", Columns: searchCols}
		for _, tau := range Taus {
			ms := sys.measureSearch(qs, tau)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.3f", tau), fmtMS(ms[0]), fmtMS(ms[1]), fmtMS(ms[2]), fmtMS(ms[3]),
			})
		}
		return t, nil
	}
}
