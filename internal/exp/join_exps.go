package exp

import (
	"fmt"
	"time"

	"dita/internal/baseline"
	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/traj"
)

func init() {
	register("fig9a", "Join time vs τ, Beijing-like (Simba vs DITA, DTW)", joinVaryTau("beijing"))
	register("fig10a", "Join time vs τ, Chengdu-like (Simba vs DITA, DTW)", joinVaryTau("chengdu"))
	register("fig9b", "Join scalability vs data size, Beijing-like", joinScalability("beijing"))
	register("fig10b", "Join scalability vs data size, Chengdu-like", joinScalability("chengdu"))
	register("fig9c", "Join scale-up vs workers, Beijing-like", joinScaleUp("beijing"))
	register("fig10c", "Join scale-up vs workers, Chengdu-like", joinScaleUp("chengdu"))
	register("fig9d", "Join scale-out (size+workers), Beijing-like", joinScaleOut("beijing"))
	register("fig10d", "Join scale-out (size+workers), Chengdu-like", joinScaleOut("chengdu"))
	register("fig11b", "Join time vs τ on OSM-like, DTW (DITA only)", joinLarge(measure.DTW{}))
	register("fig11d", "Join time vs τ on OSM-like, Fréchet (DITA only)", joinLarge(measure.Frechet{}))
	register("fig13a", "DITA vs Random partitioning, join, Beijing-like", partitioningScheme("beijing"))
	register("fig13b", "DITA vs Random partitioning, join, Chengdu-like", partitioningScheme("chengdu"))
	register("fig16a", "Load ratio vs τ, Beijing-like (balanced vs naive)", loadBalancing("beijing", true))
	register("fig16b", "Load ratio vs τ, Chengdu-like (balanced vs naive)", loadBalancing("chengdu", true))
	register("fig16c", "Join total time vs τ, Beijing-like (balanced vs naive)", loadBalancing("beijing", false))
	register("fig16d", "Join total time vs τ, Chengdu-like (balanced vs naive)", loadBalancing("chengdu", false))
}

// joinData materializes a join-scale dataset of the given kind.
func (c Config) joinData(kind string) *traj.Dataset {
	cfg2 := c
	cfg2.NBeijing, cfg2.NChengdu, cfg2.NOSM = c.NJoin, c.NJoin, c.NJoin
	return cfg2.dataset(kind)
}

// ditaSelfJoin builds two engines over d on one cluster and times the
// self-join, returning simulated elapsed and stats.
func ditaSelfJoin(d *traj.Dataset, m measure.Measure, workers int, tau float64, jopts core.JoinOptions) (time.Duration, core.JoinStats, error) {
	opts := engineOpts(m, workers)
	e1, err := core.NewEngine(d, opts)
	if err != nil {
		return 0, core.JoinStats{}, err
	}
	e2, err := core.NewEngine(d, opts)
	if err != nil {
		return 0, core.JoinStats{}, err
	}
	var stats core.JoinStats
	el := minElapsed(opts.Cluster, func() {
		stats = core.JoinStats{}
		e1.Join(e2, tau, jopts, &stats)
	})
	return el, stats, nil
}

// simbaSelfJoin times the Simba-style join.
func simbaSelfJoin(d *traj.Dataset, workers int, tau float64) time.Duration {
	cl := expCluster(workers)
	s1 := baseline.NewSimba(d, measure.DTW{}, cl, 2*workers)
	s2 := baseline.NewSimba(d, measure.DTW{}, cl, 2*workers)
	return minElapsed(cl, func() { s1.Join(s2, tau) })
}

func joinVaryTau(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		t := &Table{ID: "fig-join-tau-" + kind, Title: "join time vs τ (" + d.Name + ")",
			Columns: []string{"tau", "Simba(s)", "DITA(s)"}}
		for _, tau := range Taus {
			simba := simbaSelfJoin(d, cfg.Workers, tau)
			dita, _, err := ditaSelfJoin(d, measure.DTW{}, cfg.Workers, tau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", tau), fmtSec(simba), fmtSec(dita)})
		}
		return t, nil
	}
}

func joinScalability(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		full := cfg.joinData(kind)
		t := &Table{ID: "fig-join-scale-" + kind, Title: "join time vs data size (" + full.Name + ")",
			Columns: []string{"rate", "Simba(s)", "DITA(s)"}}
		for _, rate := range []float64{0.25, 0.5, 0.75, 1.0} {
			d := full.Sample(rate)
			simba := simbaSelfJoin(d, cfg.Workers, DefaultTau)
			dita, _, err := ditaSelfJoin(d, measure.DTW{}, cfg.Workers, DefaultTau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", rate), fmtSec(simba), fmtSec(dita)})
		}
		return t, nil
	}
}

func joinScaleUp(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		t := &Table{ID: "fig-join-scaleup-" + kind, Title: "join time vs workers (" + d.Name + ")",
			Columns: []string{"workers", "Simba(s)", "DITA(s)"}}
		for _, w := range []int{1, 2, 4, 8} {
			simba := simbaSelfJoin(d, w, DefaultTau)
			dita, _, err := ditaSelfJoin(d, measure.DTW{}, w, DefaultTau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", w), fmtSec(simba), fmtSec(dita)})
		}
		return t, nil
	}
}

func joinScaleOut(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		full := cfg.joinData(kind)
		t := &Table{ID: "fig-join-scaleout-" + kind, Title: "join scale-out (" + full.Name + ")",
			Columns: []string{"scale", "Simba(s)", "DITA(s)"}}
		steps := []struct {
			rate float64
			w    int
		}{{0.25, 1}, {0.5, 2}, {0.75, 4}, {1.0, 8}}
		for _, st := range steps {
			d := full.Sample(st.rate)
			simba := simbaSelfJoin(d, st.w, DefaultTau)
			dita, _, err := ditaSelfJoin(d, measure.DTW{}, st.w, DefaultTau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f,%dw", st.rate, st.w), fmtSec(simba), fmtSec(dita)})
		}
		return t, nil
	}
}

func joinLarge(m measure.Measure) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData("osm")
		t := &Table{ID: "fig-join-osm-" + m.Name(), Title: "join time vs τ on OSM-like (" + m.Name() + ", DITA only)",
			Columns: []string{"tau", "DITA(s)"}}
		for _, tau := range Taus {
			dita, _, err := ditaSelfJoin(d, m, cfg.Workers, tau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", tau), fmtSec(dita)})
		}
		return t, nil
	}
}

// partitioningScheme reproduces Figure 13: DITA's first/last STR
// partitioning vs random partitioning, join time vs τ.
func partitioningScheme(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		t := &Table{ID: "fig13-" + kind, Title: "partitioning scheme, join time vs τ (" + d.Name + ")",
			Columns: []string{"tau", "DITA(s)", "Random(s)"}}
		for _, tau := range Taus {
			dita, _, err := ditaSelfJoin(d, measure.DTW{}, cfg.Workers, tau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			ropts := engineOpts(measure.DTW{}, cfg.Workers)
			ropts.RandomPartition = true
			r1, err := core.NewEngine(d, ropts)
			if err != nil {
				return nil, err
			}
			r2, err := core.NewEngine(d, ropts)
			if err != nil {
				return nil, err
			}
			random := minElapsed(ropts.Cluster, func() {
				r1.Join(r2, tau, core.DefaultJoinOptions(), nil)
			})
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", tau), fmtSec(dita), fmtSec(random)})
		}
		return t, nil
	}
}

// loadBalancing reproduces Figure 16: the load (un-balance) ratio and the
// join total time, with and without DITA's balancing mechanisms.
func loadBalancing(kind string, ratio bool) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		cols := []string{"tau", "DITA", "Naive"}
		title := "join load ratio vs τ (" + d.Name + ")"
		if !ratio {
			title = "join total time vs τ, balancing ablation (" + d.Name + ")"
			cols = []string{"tau", "DITA(s)", "Naive(s)"}
		}
		t := &Table{ID: "fig16-" + kind, Title: title, Columns: cols}
		naiveOpts := core.DefaultJoinOptions()
		naiveOpts.DisableOrientation = true
		naiveOpts.DisableDivision = true
		for _, tau := range Taus {
			elB, stB, err := ditaSelfJoin(d, measure.DTW{}, cfg.Workers, tau, core.DefaultJoinOptions())
			if err != nil {
				return nil, err
			}
			elN, stN, err := ditaSelfJoin(d, measure.DTW{}, cfg.Workers, tau, naiveOpts)
			if err != nil {
				return nil, err
			}
			if ratio {
				t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", tau),
					fmt.Sprintf("%.2f", stB.LoadRatio), fmt.Sprintf("%.2f", stN.LoadRatio)})
			} else {
				t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", tau), fmtSec(elB), fmtSec(elN)})
			}
		}
		return t, nil
	}
}
