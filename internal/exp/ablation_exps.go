package exp

import (
	"fmt"

	"time"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/traj"
)

func init() {
	register("fig12a", "Pivot selection strategy, Beijing-like (join time vs τ)", pivotStrategy("beijing"))
	register("fig12b", "Pivot selection strategy, Chengdu-like (join time vs τ)", pivotStrategy("chengdu"))
	register("fig12c", "Pivot size K, Beijing-like (join time vs τ)", pivotSize("beijing", []int{2, 3, 4, 5}))
	register("fig12d", "Pivot size K, Chengdu-like (join time vs τ)", pivotSize("chengdu", []int{3, 4, 5, 6}))
	register("fig14a", "Trie fanout NL, Beijing-like (join time vs τ)", varyNL("beijing"))
	register("fig14b", "Trie fanout NL, Chengdu-like (join time vs τ)", varyNL("chengdu"))
	register("fig15a", "Other distance functions: DTW and Fréchet (join time vs τ)", otherDistances())
	register("fig15b", "Other distance functions: EDR and LCSS (join time vs integer τ)", editDistances())
	register("table4", "Varying number of partitions NG (search ms, join s)", varyNG())
}

// pivotStrategy reproduces Figure 12(a,b): join time under the three pivot
// selection strategies.
func pivotStrategy(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		t := &Table{ID: "fig12-strategy-" + kind, Title: "pivot strategies, join time vs τ (" + d.Name + ")",
			Columns: []string{"tau", "Inflection(s)", "Neighbor(s)", "First/Last(s)"}}
		strategies := []pivot.Strategy{pivot.Inflection, pivot.Neighbor, pivot.FirstLast}
		for _, tau := range Taus {
			row := []string{fmt.Sprintf("%.3f", tau)}
			for _, s := range strategies {
				opts := engineOpts(measure.DTW{}, cfg.Workers)
				opts.Trie.Strategy = s
				el, err := selfJoinWith(d, opts, tau)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtSec(el))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// pivotSize reproduces Figure 12(c,d): join time for different K.
func pivotSize(kind string, ks []int) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		cols := []string{"tau"}
		for _, k := range ks {
			cols = append(cols, fmt.Sprintf("K=%d(s)", k))
		}
		t := &Table{ID: "fig12-K-" + kind, Title: "pivot size K, join time vs τ (" + d.Name + ")", Columns: cols}
		for _, tau := range Taus {
			row := []string{fmt.Sprintf("%.3f", tau)}
			for _, k := range ks {
				opts := engineOpts(measure.DTW{}, cfg.Workers)
				opts.Trie.K = k
				el, err := selfJoinWith(d, opts, tau)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtSec(el))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// varyNL reproduces Figure 14: join time for different trie fanouts.
func varyNL(kind string) Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.joinData(kind)
		nls := []int{4, 8, 16}
		cols := []string{"tau"}
		for _, nl := range nls {
			cols = append(cols, fmt.Sprintf("NL=%d(s)", nl))
		}
		t := &Table{ID: "fig14-" + kind, Title: "trie fanout NL, join time vs τ (" + d.Name + ")", Columns: cols}
		for _, tau := range Taus {
			row := []string{fmt.Sprintf("%.3f", tau)}
			for _, nl := range nls {
				opts := engineOpts(measure.DTW{}, cfg.Workers)
				opts.Trie.NLAlign = nl
				opts.Trie.NLPivot = nl / 2
				if opts.Trie.NLPivot < 2 {
					opts.Trie.NLPivot = 2
				}
				el, err := selfJoinWith(d, opts, tau)
				if err != nil {
					return nil, err
				}
				row = append(row, fmtSec(el))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// selfJoinWith builds two engines with opts (fresh cluster shared by both)
// and returns the simulated join time.
func selfJoinWith(d *traj.Dataset, opts core.Options, tau float64) (time.Duration, error) {
	e1, err := core.NewEngine(d, opts)
	if err != nil {
		return 0, err
	}
	e2, err := core.NewEngine(d, opts)
	if err != nil {
		return 0, err
	}
	el := minElapsed(opts.Cluster, func() {
		e1.Join(e2, tau, core.DefaultJoinOptions(), nil)
	})
	return el, nil
}

// otherDistances reproduces Figure 15(a): DTW vs Fréchet join times on
// both city datasets.
func otherDistances() Runner {
	return func(cfg Config) (*Table, error) {
		bj := cfg.joinData("beijing")
		cd := cfg.joinData("chengdu")
		t := &Table{ID: "fig15a", Title: "join time vs τ: DTW and Fréchet on both datasets",
			Columns: []string{"tau", "DTW(Beijing)(s)", "DTW(Chengdu)(s)", "Frechet(Beijing)(s)", "Frechet(Chengdu)(s)"}}
		for _, tau := range Taus {
			row := []string{fmt.Sprintf("%.3f", tau)}
			for _, m := range []measure.Measure{measure.DTW{}, measure.Frechet{}} {
				for _, d := range []*traj.Dataset{bj, cd} {
					el, _, err := ditaSelfJoin(d, m, cfg.Workers, tau, core.DefaultJoinOptions())
					if err != nil {
						return nil, err
					}
					row = append(row, fmtSec(el))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// editDistances reproduces Figure 15(b): EDR and LCSS with integer
// thresholds 1..5 (ε = 0.0001, δ = 3 per Appendix B).
func editDistances() Runner {
	return func(cfg Config) (*Table, error) {
		bj := cfg.joinData("beijing")
		cd := cfg.joinData("chengdu")
		t := &Table{ID: "fig15b", Title: "join time vs integer τ: EDR and LCSS (ε=0.0001, δ=3)",
			Columns: []string{"tau", "EDR(Beijing)(s)", "EDR(Chengdu)(s)", "LCSS(Beijing)(s)", "LCSS(Chengdu)(s)"}}
		for tau := 1; tau <= 5; tau++ {
			row := []string{fmt.Sprintf("%d", tau)}
			for _, m := range []measure.Measure{measure.EDR{Eps: 0.0001}, measure.LCSS{Eps: 0.0001, Delta: 3}} {
				for _, d := range []*traj.Dataset{bj, cd} {
					el, _, err := ditaSelfJoin(d, m, cfg.Workers, float64(tau), core.DefaultJoinOptions())
					if err != nil {
						return nil, err
					}
					row = append(row, fmtSec(el))
				}
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}
}

// varyNG reproduces Table 4: search and join performance as the global
// partitioning factor changes.
func varyNG() Runner {
	return func(cfg Config) (*Table, error) {
		d := cfg.dataset("beijing")
		jd := cfg.joinData("beijing")
		qs := gen.Queries(d, cfg.Queries, cfg.Seed+10)
		t := &Table{ID: "table4", Title: "varying NG (Beijing-like, DTW, τ=default)",
			Columns: []string{"NG", "partitions", "search(ms)", "join(s)"}}
		for _, ng := range []int{2, 4, 8, 16, 32} {
			opts := engineOpts(measure.DTW{}, cfg.Workers)
			opts.NG = ng
			e, err := core.NewEngine(d, opts)
			if err != nil {
				return nil, err
			}
			searchMS := msPerQuery(opts.Cluster, len(qs), func() {
				for _, q := range qs {
					e.Search(q, DefaultTau, nil)
				}
			})
			jopts := engineOpts(measure.DTW{}, cfg.Workers)
			jopts.NG = ng
			el, err := selfJoinWith(jd, jopts, DefaultTau)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", ng), fmt.Sprintf("%d", len(e.Partitions())), fmtMS(searchMS), fmtSec(el),
			})
		}
		return t, nil
	}
}
