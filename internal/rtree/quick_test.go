package rtree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dita/internal/geom"
)

// qindex is a quick.Generator bundling random entries with a random query.
type qindex struct {
	Entries []Entry
	Q       geom.Point
	R       float64
	Fanout  int
}

// Generate implements quick.Generator.
func (qindex) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(300)
	es := make([]Entry, n)
	for i := range es {
		p := geom.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		q := geom.Point{X: p.X + rng.Float64()*4, Y: p.Y + rng.Float64()*4}
		es[i] = Entry{MBR: geom.NewMBR(p).Extend(q), ID: i}
	}
	return reflect.ValueOf(qindex{
		Entries: es,
		Q:       geom.Point{X: rng.Float64()*60 - 5, Y: rng.Float64()*60 - 5},
		R:       rng.Float64() * 12,
		Fanout:  2 + rng.Intn(20),
	})
}

// WithinDist equals brute force for arbitrary entry sets, queries, radii
// and fanouts.
func TestQuickWithinDistExact(t *testing.T) {
	f := func(in qindex) bool {
		tree := NewWithFanout(in.Entries, in.Fanout)
		got := map[int]bool{}
		for _, e := range tree.WithinDist(in.Q, in.R, nil) {
			got[e.ID] = true
		}
		for _, e := range in.Entries {
			if want := e.MBR.MinDist(in.Q) <= in.R; got[e.ID] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The tree indexes every entry exactly once.
func TestQuickTreeComplete(t *testing.T) {
	f := func(in qindex) bool {
		tree := NewWithFanout(in.Entries, in.Fanout)
		count := map[int]int{}
		tree.Visit(geom.MBR{Min: geom.Point{X: -1e9, Y: -1e9}, Max: geom.Point{X: 1e9, Y: 1e9}},
			func(e Entry) bool { count[e.ID]++; return true })
		if len(count) != len(in.Entries) {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
