package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"dita/internal/geom"
)

func randEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		q := geom.Point{X: p.X + rng.Float64()*5, Y: p.Y + rng.Float64()*5}
		es[i] = Entry{MBR: geom.NewMBR(p).Extend(q), ID: i}
	}
	return es
}

// WithinDist must return exactly the entries a linear scan returns.
func TestWithinDistMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(400)
		es := randEntries(rng, n)
		tree := New(es)
		if tree.Len() != n {
			t.Fatalf("Len = %d, want %d", tree.Len(), n)
		}
		for q := 0; q < 20; q++ {
			p := geom.Point{X: rng.Float64()*120 - 10, Y: rng.Float64()*120 - 10}
			r := rng.Float64() * 20
			got := tree.WithinDist(p, r, nil)
			var want []int
			for _, e := range es {
				if e.MBR.MinDist(p) <= r {
					want = append(want, e.ID)
				}
			}
			gotIDs := make([]int, len(got))
			for i, e := range got {
				gotIDs[i] = e.ID
			}
			sort.Ints(gotIDs)
			sort.Ints(want)
			if len(gotIDs) != len(want) {
				t.Fatalf("got %d entries, want %d (n=%d r=%v)", len(gotIDs), len(want), n, r)
			}
			for i := range want {
				if gotIDs[i] != want[i] {
					t.Fatalf("result mismatch at %d", i)
				}
			}
		}
	}
}

func TestVisitMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	es := randEntries(rng, 500)
	tree := New(es)
	for q := 0; q < 50; q++ {
		a := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		query := geom.NewMBR(a).Extend(geom.Point{X: a.X + 10, Y: a.Y + 10})
		got := map[int]bool{}
		tree.Visit(query, func(e Entry) bool { got[e.ID] = true; return true })
		for _, e := range es {
			want := e.MBR.Intersects(query)
			if got[e.ID] != want {
				t.Fatalf("entry %d: visit=%v want=%v", e.ID, got[e.ID], want)
			}
		}
	}
}

func TestVisitEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randEntries(rng, 100)
	tree := New(es)
	count := 0
	all := geom.MBR{Min: geom.Point{X: -1000, Y: -1000}, Max: geom.Point{X: 1000, Y: 1000}}
	tree.Visit(all, func(Entry) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d entries, want 5", count)
	}
}

func TestEmptyTree(t *testing.T) {
	tree := New(nil)
	if tree.Len() != 0 || tree.Height() != 0 {
		t.Errorf("empty tree: Len=%d Height=%d", tree.Len(), tree.Height())
	}
	if got := tree.WithinDist(geom.Point{}, 100, nil); len(got) != 0 {
		t.Errorf("empty tree returned entries: %v", got)
	}
	tree.Visit(geom.MBR{Max: geom.Point{X: 1, Y: 1}}, func(Entry) bool {
		t.Error("visit on empty tree")
		return false
	})
	if tree.SizeBytes() != 0 {
		t.Errorf("empty tree SizeBytes = %d", tree.SizeBytes())
	}
}

func TestSingleEntry(t *testing.T) {
	e := Entry{MBR: geom.MBR{Min: geom.Point{X: 1, Y: 1}, Max: geom.Point{X: 2, Y: 2}}, ID: 42}
	tree := New([]Entry{e})
	got := tree.WithinDist(geom.Point{X: 0, Y: 0}, 2, nil)
	if len(got) != 1 || got[0].ID != 42 {
		t.Errorf("got %v", got)
	}
	if got := tree.WithinDist(geom.Point{X: 0, Y: 0}, 1, nil); len(got) != 0 {
		t.Errorf("too-far query returned %v", got)
	}
}

func TestHeightGrows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := New(randEntries(rng, 10))
	big := NewWithFanout(randEntries(rng, 2000), 8)
	if small.Height() < 1 {
		t.Error("nonempty tree must have height >= 1")
	}
	if big.Height() <= small.Height() {
		t.Errorf("2000-entry fanout-8 tree height %d should exceed 10-entry height %d",
			big.Height(), small.Height())
	}
	if big.SizeBytes() <= small.SizeBytes() {
		t.Error("bigger tree should report bigger size")
	}
}

func TestLowFanoutClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	es := randEntries(rng, 50)
	tree := NewWithFanout(es, 0) // clamped to 2
	got := tree.WithinDist(geom.Point{X: 50, Y: 50}, 1000, nil)
	if len(got) != 50 {
		t.Errorf("fanout-clamped tree lost entries: %d", len(got))
	}
}
