// Package rtree provides a static, STR bulk-loaded R-tree over rectangles.
//
// DITA's global index (Section 4.2.2) is "an R-tree for all MBR_f and an
// R-tree for all MBR_l across all partitions": given a query point q and a
// threshold τ, it returns every indexed rectangle whose MinDist to q is at
// most τ. The trees are built once from the partitioning and never
// mutated, so bulk loading [Leutenegger et al., ICDE 1997] is the right
// construction: it yields near-perfectly packed nodes and balanced depth.
package rtree

import (
	"sort"

	"dita/internal/geom"
)

// DefaultFanout is the node capacity used by New. 16 keeps trees shallow
// for the NG² ≤ 64k rectangles DITA indexes while staying cache-friendly.
const DefaultFanout = 16

// Entry is an indexed rectangle with an opaque identifier (DITA stores the
// partition id).
type Entry struct {
	MBR geom.MBR
	ID  int
}

type node struct {
	mbr      geom.MBR
	children []*node // nil for leaves
	entries  []Entry // nil for internal nodes
}

// Tree is an immutable R-tree. The zero value is an empty tree.
type Tree struct {
	root   *node
	size   int
	fanout int
}

// New bulk-loads a tree from the entries with the default fanout.
func New(entries []Entry) *Tree { return NewWithFanout(entries, DefaultFanout) }

// NewWithFanout bulk-loads a tree with the given node capacity (minimum 2).
func NewWithFanout(entries []Entry, fanout int) *Tree {
	if fanout < 2 {
		fanout = 2
	}
	t := &Tree{size: len(entries), fanout: fanout}
	if len(entries) == 0 {
		return t
	}
	leaves := packLeaves(entries, fanout)
	t.root = packUpward(leaves, fanout)
	return t
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// packLeaves STR-sorts the entries by center and packs them into leaves.
func packLeaves(entries []Entry, fanout int) []*node {
	sorted := make([]Entry, len(entries))
	copy(sorted, entries)
	strSortEntries(sorted, fanout)
	var leaves []*node
	for start := 0; start < len(sorted); start += fanout {
		end := start + fanout
		if end > len(sorted) {
			end = len(sorted)
		}
		chunk := sorted[start:end]
		m := geom.EmptyMBR()
		for _, e := range chunk {
			m = m.Union(e.MBR)
		}
		leaves = append(leaves, &node{mbr: m, entries: chunk})
	}
	return leaves
}

// strSortEntries orders entries by STR: slabs by center x, then center y
// within each slab.
func strSortEntries(es []Entry, fanout int) {
	n := len(es)
	sort.SliceStable(es, func(a, b int) bool {
		ca, cb := es[a].MBR.Center(), es[b].MBR.Center()
		if ca.X != cb.X {
			return ca.X < cb.X
		}
		return ca.Y < cb.Y
	})
	leaves := (n + fanout - 1) / fanout
	slabs := intSqrtCeil(leaves)
	if slabs == 0 {
		return
	}
	perSlab := ((leaves + slabs - 1) / slabs) * fanout
	for start := 0; start < n; start += perSlab {
		end := start + perSlab
		if end > n {
			end = n
		}
		part := es[start:end]
		sort.SliceStable(part, func(a, b int) bool {
			ca, cb := part[a].MBR.Center(), part[b].MBR.Center()
			if ca.Y != cb.Y {
				return ca.Y < cb.Y
			}
			return ca.X < cb.X
		})
	}
}

func intSqrtCeil(n int) int {
	if n <= 0 {
		return 0
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// packUpward builds internal levels until a single root remains.
func packUpward(level []*node, fanout int) *node {
	for len(level) > 1 {
		var next []*node
		// Re-sort nodes by center for spatial coherence of parents.
		sort.SliceStable(level, func(a, b int) bool {
			ca, cb := level[a].mbr.Center(), level[b].mbr.Center()
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ca.Y < cb.Y
		})
		for start := 0; start < len(level); start += fanout {
			end := start + fanout
			if end > len(level) {
				end = len(level)
			}
			chunk := level[start:end]
			m := geom.EmptyMBR()
			for _, c := range chunk {
				m = m.Union(c.mbr)
			}
			next = append(next, &node{mbr: m, children: chunk})
		}
		level = next
	}
	return level[0]
}

// WithinDist appends to dst every entry whose rectangle's MinDist to p is
// at most r, and returns the extended slice. This is the global index
// probe: MinDist(q1, MBR_f) <= τ (Section 5.2).
func (t *Tree) WithinDist(p geom.Point, r float64, dst []Entry) []Entry {
	if t.root == nil {
		return dst
	}
	return within(t.root, p, r, dst)
}

func within(n *node, p geom.Point, r float64, dst []Entry) []Entry {
	if n.mbr.MinDist(p) > r {
		return dst
	}
	if n.children == nil {
		for _, e := range n.entries {
			if e.MBR.MinDist(p) <= r {
				dst = append(dst, e)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = within(c, p, r, dst)
	}
	return dst
}

// Visit calls fn for every entry whose rectangle intersects query,
// stopping early if fn returns false.
func (t *Tree) Visit(query geom.MBR, fn func(Entry) bool) {
	if t.root == nil {
		return
	}
	visit(t.root, query, fn)
}

func visit(n *node, query geom.MBR, fn func(Entry) bool) bool {
	if !n.mbr.Intersects(query) {
		return true
	}
	if n.children == nil {
		for _, e := range n.entries {
			if e.MBR.Intersects(query) {
				if !fn(e) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !visit(c, query, fn) {
			return false
		}
	}
	return true
}

// Height returns the number of levels (0 for an empty tree).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
	return h
}

// SizeBytes estimates the in-memory footprint: 4 float64 per rectangle
// plus an int id per entry and per-node overhead. Table 5 reports index
// sizes from this.
func (t *Tree) SizeBytes() int {
	total := 0
	var walk func(n *node)
	walk = func(n *node) {
		total += 40 // node MBR + slice headers, approximately
		total += len(n.entries) * 40
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}
