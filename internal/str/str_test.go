package str

import (
	"math/rand"
	"testing"

	"dita/internal/geom"
)

func randPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	return pts
}

func TestTilePartitionsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(40)
		keys := randPoints(rng, n)
		tiles := Tile(keys, k)
		seen := make([]bool, n)
		for _, tile := range tiles {
			if len(tile) == 0 {
				t.Fatal("empty tile")
			}
			for _, i := range tile {
				if seen[i] {
					t.Fatalf("index %d in two tiles", i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("index %d not assigned (n=%d k=%d)", i, n, k)
			}
		}
	}
}

func TestTileBalance(t *testing.T) {
	// STR's guarantee: near-equal cardinality per tile even under heavy
	// skew. We allow a factor-3 spread, far tighter than hash or grid
	// partitioning achieves on this input.
	rng := rand.New(rand.NewSource(2))
	// Heavily skewed: 90% of points in a tiny corner cluster.
	n := 10000
	keys := make([]geom.Point, n)
	for i := range keys {
		if i < n*9/10 {
			keys[i] = geom.Point{X: rng.Float64() * 0.01, Y: rng.Float64() * 0.01}
		} else {
			keys[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
	}
	k := 16
	tiles := Tile(keys, k)
	min, max := n, 0
	for _, tile := range tiles {
		if len(tile) < min {
			min = len(tile)
		}
		if len(tile) > max {
			max = len(tile)
		}
	}
	if max > 3*min {
		t.Errorf("imbalanced tiles under skew: min=%d max=%d (k=%d)", min, max, k)
	}
}

func TestTileCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := randPoints(rng, 100)
	if got := len(Tile(keys, 1)); got != 1 {
		t.Errorf("n=1: %d tiles", got)
	}
	if got := len(Tile(keys, 200)); got != 100 {
		t.Errorf("more tiles than points: %d", got)
	}
	if got := Tile(nil, 4); got != nil {
		t.Errorf("empty keys: %v", got)
	}
	if got := Tile(keys, 0); got != nil {
		t.Errorf("k=0: %v", got)
	}
	// Requested k tiles: should produce close to k (within the slab
	// rounding: at most ceil(sqrt(k))^2).
	for _, k := range []int{4, 9, 16, 25} {
		got := len(Tile(keys, k))
		if got < k || got > k+int(2*float64(k)) {
			t.Errorf("k=%d: produced %d tiles", k, got)
		}
	}
}

func TestTileSpatialCoherence(t *testing.T) {
	// Four well-separated clusters, four tiles: each tile should be one
	// cluster (tiles must not straddle clusters).
	rng := rand.New(rand.NewSource(4))
	var keys []geom.Point
	centers := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}}
	for _, c := range centers {
		for i := 0; i < 25; i++ {
			keys = append(keys, geom.Point{X: c.X + rng.Float64(), Y: c.Y + rng.Float64()})
		}
	}
	tiles := Tile(keys, 4)
	mbrs := TileMBRs(keys, tiles)
	for i, m := range mbrs {
		if m.Max.X-m.Min.X > 10 || m.Max.Y-m.Min.Y > 10 {
			t.Errorf("tile %d straddles clusters: %v", i, m)
		}
	}
}

func TestTileMBRsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := randPoints(rng, 300)
	tiles := Tile(keys, 9)
	mbrs := TileMBRs(keys, tiles)
	for ti, tile := range tiles {
		for _, i := range tile {
			if !mbrs[ti].Contains(keys[i]) {
				t.Fatalf("tile %d MBR %v does not contain member %v", ti, mbrs[ti], keys[i])
			}
		}
	}
}

func TestTileDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := randPoints(rng, 200)
	a := Tile(keys, 8)
	b := Tile(keys, 8)
	if len(a) != len(b) {
		t.Fatal("tile count differs")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("tile sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("tile membership differs")
			}
		}
	}
}
