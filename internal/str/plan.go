package str

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"dita/internal/geom"
)

// Plan is an explicit STR boundary-cut description: the vertical cuts
// that bound the slabs, and per-slab horizontal cuts that bound the
// tiles. Unlike Tile — which returns a membership listing for one fixed
// point set — a Plan is a total function over the plane: every point
// locates to exactly one tile (the outermost slabs and tiles extend to
// infinity), so the cuts cover the space with no overlap and no gap by
// construction. That totality is what online re-partitioning needs: a
// split computed from a partition's current members must still place a
// trajectory ingested a millisecond later, wherever it lands.
//
// Tiles are numbered slab-major: tile t of slab s has index
// sum(len(YCuts[i])+1 for i<s) + t.
type Plan struct {
	// XCuts are the interior vertical cuts, ascending. len(XCuts)+1
	// slabs. A point with X < XCuts[i] (strictly) falls left of cut i.
	XCuts []float64
	// YCuts holds, per slab, the interior horizontal cuts, ascending.
	// len(YCuts) == len(XCuts)+1; slab s has len(YCuts[s])+1 tiles.
	YCuts [][]float64
}

// Cut computes an STR boundary plan that divides keys into about n
// tiles of near-equal cardinality: the same sort-tile-recursive pass as
// Tile, but returning the cut coordinates (midpoints between adjacent
// sorted keys at each split position) instead of the membership. Ties
// at a split position degrade balance, never correctness — Locate stays
// total. Returns a one-tile plan (no cuts) when n <= 1 or keys is
// empty.
func Cut(keys []geom.Point, n int) Plan {
	if n > len(keys) {
		n = len(keys)
	}
	if n <= 1 {
		return Plan{YCuts: [][]float64{nil}}
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.X != kb.X {
			return ka.X < kb.X
		}
		return ka.Y < kb.Y
	})
	slabs := split(idx, s)
	tilesPerSlab := int(math.Ceil(float64(n) / float64(len(slabs))))
	p := Plan{YCuts: make([][]float64, len(slabs))}
	for si, slab := range slabs {
		if si > 0 {
			lo := keys[slabs[si-1][len(slabs[si-1])-1]].X
			hi := keys[slab[0]].X
			p.XCuts = append(p.XCuts, midCut(lo, hi, p.XCuts))
		}
		sort.SliceStable(slab, func(a, b int) bool {
			ka, kb := keys[slab[a]], keys[slab[b]]
			if ka.Y != kb.Y {
				return ka.Y < kb.Y
			}
			return ka.X < kb.X
		})
		tiles := split(slab, tilesPerSlab)
		for ti := 1; ti < len(tiles); ti++ {
			lo := keys[tiles[ti-1][len(tiles[ti-1])-1]].Y
			hi := keys[tiles[ti][0]].Y
			p.YCuts[si] = append(p.YCuts[si], midCut(lo, hi, p.YCuts[si]))
		}
	}
	return p
}

// midCut picks a cut between lo and hi (the adjacent sorted key values
// straddling a split position), clamped to stay monotone with the cuts
// already chosen. Equal values yield a cut at that value — the tiles on
// one side may run empty under heavy ties, but Locate stays total.
func midCut(lo, hi float64, prev []float64) float64 {
	c := lo + (hi-lo)/2
	if len(prev) > 0 && c < prev[len(prev)-1] {
		c = prev[len(prev)-1]
	}
	return c
}

// Tiles returns the number of tiles the plan defines.
func (p Plan) Tiles() int {
	n := 0
	for _, yc := range p.YCuts {
		n += len(yc) + 1
	}
	return n
}

// Locate maps a point to its tile index in [0, Tiles()). A point on a
// cut belongs to the higher side (slab/tile i is [cut[i-1], cut[i])),
// so every point locates to exactly one tile: the cuts partition the
// plane with no overlap and no gap.
func (p Plan) Locate(pt geom.Point) int {
	s := sort.SearchFloat64s(p.XCuts, pt.X)
	// SearchFloat64s finds the first cut >= X; a point exactly on cut i
	// belongs to slab i+1, so step past equal cuts.
	for s < len(p.XCuts) && p.XCuts[s] == pt.X {
		s++
	}
	base := 0
	for i := 0; i < s; i++ {
		base += len(p.YCuts[i]) + 1
	}
	yc := p.YCuts[s]
	t := sort.SearchFloat64s(yc, pt.Y)
	for t < len(yc) && yc[t] == pt.Y {
		t++
	}
	return base + t
}

// Assign groups the indices of keys by Locate. The returned slice has
// exactly Tiles() groups; groups may be empty (unlike Tile's), e.g.
// when keys have moved since the plan was cut, or under heavy ties.
func (p Plan) Assign(keys []geom.Point) [][]int {
	out := make([][]int, p.Tiles())
	for i, k := range keys {
		t := p.Locate(k)
		out[t] = append(out[t], i)
	}
	return out
}

// Validate checks structural invariants: matching slab counts, finite
// ascending cuts. A valid plan's Locate is total and injective per
// point, i.e. the cuts cover the plane with no overlap or gap.
func (p Plan) Validate() error {
	if len(p.YCuts) != len(p.XCuts)+1 {
		return fmt.Errorf("str: plan has %d slabs for %d x-cuts", len(p.YCuts), len(p.XCuts))
	}
	if err := ascending(p.XCuts); err != nil {
		return fmt.Errorf("str: x-cuts: %w", err)
	}
	for i, yc := range p.YCuts {
		if err := ascending(yc); err != nil {
			return fmt.Errorf("str: slab %d y-cuts: %w", i, err)
		}
	}
	return nil
}

func ascending(cuts []float64) error {
	for i, c := range cuts {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("cut %d is %v", i, c)
		}
		if i > 0 && c < cuts[i-1] {
			return fmt.Errorf("cut %d (%v) below cut %d (%v)", i, c, i-1, cuts[i-1])
		}
	}
	return nil
}

// planMagic versions the plan wire encoding.
const planMagic = 0x44525031 // "DRP1"

// Encode serializes the plan: magic, slab count, x-cuts, then each
// slab's y-cut count and cuts, all little-endian fixed width. The
// format is self-delimiting so a decoded plan can ride inside larger
// messages.
func (p Plan) Encode() []byte {
	n := 8 + 8*len(p.XCuts)
	for _, yc := range p.YCuts {
		n += 4 + 8*len(yc)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint32(b, planMagic)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p.YCuts)))
	for _, c := range p.XCuts {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
	}
	for _, yc := range p.YCuts {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(yc)))
		for _, c := range yc {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c))
		}
	}
	return b
}

// maxPlanCuts bounds decoded plan sizes: a re-partitioning plan has at
// most a few hundred tiles; anything claiming more is garbage input.
const maxPlanCuts = 1 << 16

var errPlanTruncated = errors.New("str: plan truncated")

// DecodePlan parses an Encode'd plan, validating structure as it goes.
// It rejects truncated, oversized, and non-monotone inputs — untrusted
// bytes (the fuzz target feeds it arbitrary input) must never yield a
// plan whose Locate is not total.
func DecodePlan(b []byte) (Plan, error) {
	u32 := func() (uint32, error) {
		if len(b) < 4 {
			return 0, errPlanTruncated
		}
		v := binary.LittleEndian.Uint32(b)
		b = b[4:]
		return v, nil
	}
	f64 := func() (float64, error) {
		if len(b) < 8 {
			return 0, errPlanTruncated
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		return v, nil
	}
	magic, err := u32()
	if err != nil {
		return Plan{}, err
	}
	if magic != planMagic {
		return Plan{}, fmt.Errorf("str: bad plan magic %#x", magic)
	}
	slabs, err := u32()
	if err != nil {
		return Plan{}, err
	}
	if slabs == 0 || slabs > maxPlanCuts {
		return Plan{}, fmt.Errorf("str: plan slab count %d out of range", slabs)
	}
	var p Plan
	if slabs > 1 {
		p.XCuts = make([]float64, slabs-1)
		for i := range p.XCuts {
			if p.XCuts[i], err = f64(); err != nil {
				return Plan{}, err
			}
		}
	}
	p.YCuts = make([][]float64, slabs)
	for i := range p.YCuts {
		n, err := u32()
		if err != nil {
			return Plan{}, err
		}
		if n > maxPlanCuts {
			return Plan{}, fmt.Errorf("str: plan y-cut count %d out of range", n)
		}
		if n > 0 {
			p.YCuts[i] = make([]float64, n)
			for j := range p.YCuts[i] {
				if p.YCuts[i][j], err = f64(); err != nil {
					return Plan{}, err
				}
			}
		}
	}
	if len(b) != 0 {
		return Plan{}, fmt.Errorf("str: %d trailing bytes after plan", len(b))
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
