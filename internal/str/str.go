// Package str implements Sort-Tile-Recursive (STR) tiling [Leutenegger et
// al., ICDE 1997], the partitioning primitive DITA uses everywhere it needs
// to split a point set into roughly equal-sized, spatially coherent groups:
// the NG×NG global partitioning of trajectories by first/last point
// (Section 4.2.1), the NL-way grouping inside each trie node (Section
// 4.2.3), and R-tree bulk loading.
//
// STR sorts the points by x, slices them into ⌈√n⌉ vertical slabs of equal
// cardinality, then sorts each slab by y and slices it into tiles of equal
// cardinality. Every tile ends up with ⌈N/n⌉ points regardless of skew,
// which is the load-balance property the paper relies on ("each partition
// has roughly the same number of points, even for highly skewed data").
package str

import (
	"math"
	"sort"

	"dita/internal/geom"
)

// Tile groups the items with the given keys into at most n tiles using
// STR. It returns, for each tile, the indices (into keys) of its members.
// Tiles are never empty; fewer than n tiles are returned when there are
// fewer than n keys.
func Tile(keys []geom.Point, n int) [][]int {
	if n <= 0 || len(keys) == 0 {
		return nil
	}
	if n > len(keys) {
		n = len(keys)
	}
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	if n == 1 {
		return [][]int{idx}
	}
	// S vertical slabs, each split into about n/S tiles.
	s := int(math.Ceil(math.Sqrt(float64(n))))
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka.X != kb.X {
			return ka.X < kb.X
		}
		return ka.Y < kb.Y
	})
	slabs := split(idx, s)
	tilesPerSlab := int(math.Ceil(float64(n) / float64(len(slabs))))
	var out [][]int
	for _, slab := range slabs {
		sort.SliceStable(slab, func(a, b int) bool {
			ka, kb := keys[slab[a]], keys[slab[b]]
			if ka.Y != kb.Y {
				return ka.Y < kb.Y
			}
			return ka.X < kb.X
		})
		out = append(out, split(slab, tilesPerSlab)...)
	}
	return out
}

// split divides items into at most k contiguous, non-empty chunks of
// near-equal size.
func split(items []int, k int) [][]int {
	if k <= 0 {
		k = 1
	}
	if k > len(items) {
		k = len(items)
	}
	if k == 0 {
		return nil
	}
	out := make([][]int, 0, k)
	base := len(items) / k
	rem := len(items) % k
	start := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, items[start:start+size])
		start += size
	}
	return out
}

// TileMBRs returns the MBR of each tile produced by Tile for the given
// keys.
func TileMBRs(keys []geom.Point, tiles [][]int) []geom.MBR {
	out := make([]geom.MBR, len(tiles))
	for i, tile := range tiles {
		m := geom.EmptyMBR()
		for _, j := range tile {
			m = m.Extend(keys[j])
		}
		out[i] = m
	}
	return out
}
