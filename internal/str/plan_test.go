package str

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"dita/internal/geom"
)

func TestCutLocateTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(30)
		keys := randPoints(rng, n)
		p := Cut(keys, k)
		if err := p.Validate(); err != nil {
			t.Fatalf("Cut produced invalid plan: %v", err)
		}
		tiles := p.Tiles()
		if tiles < 1 {
			t.Fatalf("plan has %d tiles", tiles)
		}
		// Every key — and arbitrary other points — must locate in range.
		probe := append(append([]geom.Point{}, keys...), randPoints(rng, 50)...)
		probe = append(probe, geom.Point{X: -1e18, Y: 1e18}, geom.Point{X: 1e18, Y: -1e18})
		for _, pt := range probe {
			ti := p.Locate(pt)
			if ti < 0 || ti >= tiles {
				t.Fatalf("Locate(%v) = %d, want [0,%d)", pt, ti, tiles)
			}
		}
	}
}

func TestCutBalance(t *testing.T) {
	// On tie-free keys, Assign over the cut's own keys reproduces STR's
	// near-equal cardinalities.
	rng := rand.New(rand.NewSource(11))
	keys := randPoints(rng, 5000)
	p := Cut(keys, 9)
	groups := p.Assign(keys)
	min, max := len(keys), 0
	for _, g := range groups {
		if len(g) < min {
			min = len(g)
		}
		if len(g) > max {
			max = len(g)
		}
	}
	if min == 0 || max > 3*min {
		t.Errorf("imbalanced assignment: min=%d max=%d over %d tiles", min, max, len(groups))
	}
}

func TestCutAssignPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 50; iter++ {
		keys := randPoints(rng, 1+rng.Intn(300))
		p := Cut(keys, 1+rng.Intn(20))
		groups := p.Assign(keys)
		if len(groups) != p.Tiles() {
			t.Fatalf("Assign returned %d groups for %d tiles", len(groups), p.Tiles())
		}
		seen := make([]bool, len(keys))
		for _, g := range groups {
			for _, i := range g {
				if seen[i] {
					t.Fatalf("key %d assigned twice", i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("key %d unassigned", i)
			}
		}
	}
}

func TestCutDegenerate(t *testing.T) {
	// All-identical keys: ties collapse every cut onto the same value;
	// the plan must stay valid and total.
	keys := make([]geom.Point, 100)
	for i := range keys {
		keys[i] = geom.Point{X: 1, Y: 2}
	}
	p := Cut(keys, 8)
	if err := p.Validate(); err != nil {
		t.Fatalf("degenerate plan invalid: %v", err)
	}
	groups := p.Assign(keys)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != len(keys) {
		t.Fatalf("degenerate assignment lost keys: %d/%d", total, len(keys))
	}
	if Cut(nil, 4).Tiles() != 1 {
		t.Error("empty keys should yield a one-tile plan")
	}
	if Cut(keys, 0).Tiles() != 1 {
		t.Error("n=0 should yield a one-tile plan")
	}
}

func TestPlanEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 50; iter++ {
		keys := randPoints(rng, 1+rng.Intn(500))
		p := Cut(keys, 1+rng.Intn(25))
		enc := p.Encode()
		q, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("decode of encode failed: %v", err)
		}
		if !bytes.Equal(enc, q.Encode()) {
			t.Fatal("re-encode differs")
		}
		if q.Tiles() != p.Tiles() {
			t.Fatalf("tiles %d != %d after round trip", q.Tiles(), p.Tiles())
		}
	}
}

func TestDecodePlanRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		Cut(randPoints(rand.New(rand.NewSource(14)), 100), 9).Encode()[:10],
	}
	// Non-monotone cuts.
	bad := Plan{XCuts: []float64{5, 1}, YCuts: [][]float64{nil, nil, nil}}.Encode()
	cases = append(cases, bad)
	nan := Plan{XCuts: []float64{math.NaN()}, YCuts: [][]float64{nil, nil}}.Encode()
	cases = append(cases, nan)
	for i, c := range cases {
		if _, err := DecodePlan(c); err == nil {
			t.Errorf("case %d: decode accepted garbage", i)
		}
	}
}

// FuzzRepartitionPlan drives the two properties a re-partitioning plan
// must never violate, no matter the input: (1) Encode/DecodePlan round
// trips exactly; (2) any plan that DecodePlan accepts — including ones
// built from arbitrary fuzzed bytes — has a total Locate: every probe
// point falls in exactly one tile index within range, i.e. the boundary
// cuts cover the space with no overlap and no gap.
func FuzzRepartitionPlan(f *testing.F) {
	rng := rand.New(rand.NewSource(15))
	f.Add(Cut(randPoints(rng, 200), 9).Encode(), 3.5, -2.25)
	f.Add(Cut(randPoints(rng, 7), 4).Encode(), 0.0, 0.0)
	f.Add([]byte{}, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, data []byte, px, py float64) {
		p, err := DecodePlan(data)
		if err != nil {
			return // rejected input: nothing more to hold
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("DecodePlan accepted an invalid plan: %v", err)
		}
		enc := p.Encode()
		q, err := DecodePlan(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted plan failed: %v", err)
		}
		if !bytes.Equal(enc, q.Encode()) {
			t.Fatal("encode/decode round trip not stable")
		}
		tiles := p.Tiles()
		if tiles < 1 {
			t.Fatalf("accepted plan has %d tiles", tiles)
		}
		probes := []geom.Point{
			{X: px, Y: py},
			{X: math.Inf(-1), Y: math.Inf(1)},
			{X: math.Inf(1), Y: math.Inf(-1)},
		}
		for _, c := range p.XCuts {
			probes = append(probes, geom.Point{X: c, Y: py}, geom.Point{X: math.Nextafter(c, math.Inf(-1)), Y: py})
		}
		for _, yc := range p.YCuts {
			for _, c := range yc {
				probes = append(probes, geom.Point{X: px, Y: c})
			}
		}
		for _, pt := range probes {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) {
				continue
			}
			ti := p.Locate(pt)
			if ti < 0 || ti >= tiles {
				t.Fatalf("Locate(%v) = %d, want [0,%d)", pt, ti, tiles)
			}
		}
	})
}
