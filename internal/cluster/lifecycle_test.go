package cluster

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// A panicking task surfaces as a *TaskPanic after the stage barrier; the
// other tasks still run (panic isolation, not stage abort).
func TestRunContextPanicReturnsTaskPanic(t *testing.T) {
	c := New(DefaultConfig(2))
	var ran atomic.Int64
	err := c.RunContext(context.Background(), []Task{
		{Worker: 0, Fn: func() { panic("poisoned partition") }},
		{Worker: 1, Fn: func() { ran.Add(1) }},
	})
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want *TaskPanic", err)
	}
	if tp.Worker != 0 {
		t.Errorf("panic attributed to worker %d, want 0", tp.Worker)
	}
	if tp.Value != "poisoned partition" {
		t.Errorf("panic value = %v", tp.Value)
	}
	if len(tp.Stack) == 0 {
		t.Error("stack not captured")
	}
	if ran.Load() != 1 {
		t.Errorf("healthy task did not run (ran=%d)", ran.Load())
	}
}

// Legacy Run keeps crashing semantics: the panic propagates on the
// caller's goroutine instead of killing an anonymous worker goroutine.
func TestRunRepanicsOnCallerGoroutine(t *testing.T) {
	c := New(DefaultConfig(1))
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run swallowed the task panic")
		}
		if _, ok := r.(*TaskPanic); !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
	}()
	c.Run([]Task{{Worker: 0, Fn: func() { panic("boom") }}})
}

// Cancellation stops workers from starting further tasks: with a context
// cancelled by the first task, the remaining tasks on that worker are
// skipped and RunContext reports ctx.Err().
func TestRunContextCancelSkipsUnstartedTasks(t *testing.T) {
	c := New(DefaultConfig(1)) // one worker: tasks run sequentially
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := c.RunContext(ctx, []Task{
		{Worker: 0, Fn: func() { ran.Add(1); cancel() }},
		{Worker: 0, Fn: func() { ran.Add(1) }},
		{Worker: 0, Fn: func() { ran.Add(1) }},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("ran %d tasks after cancellation, want 1", got)
	}
}

// An already-cancelled context runs nothing.
func TestRunContextPreCancelled(t *testing.T) {
	c := New(DefaultConfig(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := c.RunContext(ctx, []Task{
		{Worker: 0, Fn: func() { ran.Add(1) }},
		{Worker: 1, Fn: func() { ran.Add(1) }},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran under a dead context", ran.Load())
	}
}

// Cancellation wins over a panic when both happen: the caller asked the
// query to die; the panic is a side-show of work it no longer wants.
func TestRunContextCancelBeatsPanic(t *testing.T) {
	c := New(DefaultConfig(1))
	ctx, cancel := context.WithCancel(context.Background())
	err := c.RunContext(ctx, []Task{
		{Worker: 0, Fn: func() { cancel(); panic("late panic") }},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
