// Package cluster is DITA's distributed-execution substrate: an in-process
// stand-in for the Spark cluster the paper runs on (64 nodes × 8 cores,
// Gigabit Ethernet).
//
// The DITA algorithms interact with Spark through a narrow set of
// primitives — partitioned data, per-partition tasks, stages with barriers
// between them, and shuffles of trajectories between partitions. This
// package provides exactly those primitives and makes their costs
// observable:
//
//   - A Cluster has W workers. Each worker owns a virtual clock. A stage
//     (Run) executes tasks assigned to workers; tasks on the same worker
//     run sequentially against its clock, tasks on different workers run in
//     parallel (physically bounded by GOMAXPROCS, but the virtual clocks
//     model W true cores, so scale-up experiments behave like the paper's
//     even beyond the host's core count).
//   - Transfer(from, to, bytes) accounts a network movement using a
//     bandwidth + latency model (default: Gigabit, 0.1 ms), advancing both
//     endpoints' clocks.
//   - Elapsed() is the simulated makespan: the sum over stages of the
//     maximum per-worker stage time — what the paper's wall-clock figures
//     measure. LoadRatio() is max/min cumulative worker time — Figure 16's
//     un-balanced ratio.
//
// Nothing here is specific to trajectories; the DITA engine (internal/core)
// and the baselines are all built on it, so their costs are comparable.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Config parameterizes the simulated cluster.
type Config struct {
	// Workers is the number of simulated cores ("# of cores" in the
	// paper's scale-up experiments).
	Workers int
	// BandwidthBytesPerSec models the interconnect; the default is
	// Gigabit Ethernet (125e6 B/s), matching the paper's testbed.
	BandwidthBytesPerSec float64
	// LatencyPerMessage is the fixed per-message cost.
	LatencyPerMessage time.Duration
}

// DefaultConfig returns a Gigabit-Ethernet cluster with the given worker
// count.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:              workers,
		BandwidthBytesPerSec: 125e6,
		LatencyPerMessage:    100 * time.Microsecond,
	}
}

// Cluster is a simulated distributed in-memory cluster. Create with New;
// the zero value is not usable.
type Cluster struct {
	cfg Config

	mu      sync.Mutex
	stage   []time.Duration // per-worker time within the current stage
	total   []time.Duration // per-worker cumulative time across stages
	elapsed time.Duration   // sum of stage makespans
	bytes   int64
	msgs    int64
	tasks   int64
}

// New creates a cluster with at least one worker.
func New(cfg Config) *Cluster {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.BandwidthBytesPerSec <= 0 {
		cfg.BandwidthBytesPerSec = 125e6
	}
	return &Cluster{
		cfg:   cfg,
		stage: make([]time.Duration, cfg.Workers),
		total: make([]time.Duration, cfg.Workers),
	}
}

// Workers returns the worker count.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// Task is a unit of work bound to a worker.
type Task struct {
	// Worker is the executing worker id in [0, Workers).
	Worker int
	// Fn is the work. Its real execution time is charged to the worker's
	// virtual clock.
	Fn func()
}

// TaskPanic is the error RunContext returns when a task panicked: the
// worker is identified, the panic value preserved, and the stack captured
// at recovery time. Engines translate it into per-partition skip reports.
type TaskPanic struct {
	Worker int
	Value  any
	Stack  []byte
}

func (e *TaskPanic) Error() string {
	return fmt.Sprintf("cluster: task panic on worker %d: %v", e.Worker, e.Value)
}

// Run executes one stage: all tasks, grouped per worker; per-worker tasks
// run sequentially, distinct workers in parallel. Run returns when every
// task finished (the stage barrier) and adds the stage makespan to
// Elapsed. A task panic propagates on the caller's goroutine (crashing
// semantics for legacy callers); lifecycle-aware callers use RunContext.
func (c *Cluster) Run(tasks []Task) {
	if err := c.RunContext(context.Background(), tasks); err != nil {
		// Background contexts never cancel, so the only error is a panic;
		// re-raise it where the caller can see it instead of killing the
		// process from an anonymous worker goroutine.
		panic(err)
	}
}

// RunContext is Run with query-lifecycle control: every task runs under
// recover() (the first panic is returned as a *TaskPanic after the stage
// barrier), and a cancelled context stops workers from starting further
// tasks — in-flight tasks finish (cooperative abort; pass the context
// into the task closures to interrupt long-running work) and the stage
// accounting stays consistent. Returns nil, ctx.Err(), or a *TaskPanic.
func (c *Cluster) RunContext(ctx context.Context, tasks []Task) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	perWorker := make([][]func(), c.cfg.Workers)
	for _, t := range tasks {
		w := t.Worker
		if w < 0 || w >= c.cfg.Workers {
			panic(fmt.Sprintf("cluster: task bound to invalid worker %d of %d", w, c.cfg.Workers))
		}
		perWorker[w] = append(perWorker[w], t.Fn)
	}
	var panicMu sync.Mutex
	var firstPanic *TaskPanic
	// Physical parallelism is capped by the host; virtual clocks measure
	// as if every worker had its own core.
	sem := make(chan struct{}, maxParallel())
	var wg sync.WaitGroup
	for w, fns := range perWorker {
		if len(fns) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, fns []func()) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var busy time.Duration
			ran := 0
			for _, fn := range fns {
				if ctx.Err() != nil {
					break // cancelled: skip tasks not yet started
				}
				start := time.Now()
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if firstPanic == nil {
								firstPanic = &TaskPanic{Worker: w, Value: r, Stack: debug.Stack()}
							}
							panicMu.Unlock()
						}
					}()
					fn()
				}()
				busy += time.Since(start)
				ran++
			}
			c.mu.Lock()
			c.stage[w] += busy
			c.tasks += int64(ran)
			c.mu.Unlock()
		}(w, fns)
	}
	wg.Wait()
	c.endStage()
	if err := ctx.Err(); err != nil {
		return err
	}
	if firstPanic != nil {
		return firstPanic
	}
	return nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// endStage folds the current stage into the cumulative clocks and the
// makespan.
func (c *Cluster) endStage() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var span time.Duration
	for w := range c.stage {
		if c.stage[w] > span {
			span = c.stage[w]
		}
		c.total[w] += c.stage[w]
		c.stage[w] = 0
	}
	c.elapsed += span
}

// Transfer accounts moving bytes from one worker to another (from == to is
// free). The transfer time advances both endpoints' stage clocks; it is
// charged inside the current stage, so callers should invoke it from
// within or between the stages that cause the movement.
func (c *Cluster) Transfer(from, to int, bytes int) {
	if from == to || bytes <= 0 {
		return
	}
	d := time.Duration(float64(bytes)/c.cfg.BandwidthBytesPerSec*float64(time.Second)) +
		c.cfg.LatencyPerMessage
	c.mu.Lock()
	c.stage[from] += d
	c.stage[to] += d
	c.bytes += int64(bytes)
	c.msgs++
	c.mu.Unlock()
}

// Broadcast accounts sending bytes from one worker (usually the driver's
// worker 0) to every other worker.
func (c *Cluster) Broadcast(from, bytes int) {
	for w := 0; w < c.cfg.Workers; w++ {
		c.Transfer(from, w, bytes)
	}
}

// Metrics is a snapshot of the cluster's accounting.
type Metrics struct {
	// Elapsed is the simulated makespan: Σ over stages of max per-worker
	// stage time.
	Elapsed time.Duration
	// WorkerBusy is each worker's cumulative time.
	WorkerBusy []time.Duration
	// BytesTransferred and Messages count Transfer traffic.
	BytesTransferred int64
	Messages         int64
	// TasksRun counts executed tasks.
	TasksRun int64
}

// Metrics returns a snapshot. Any stage time not yet folded by a Run
// barrier is excluded.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	busy := make([]time.Duration, len(c.total))
	copy(busy, c.total)
	return Metrics{
		Elapsed:          c.elapsed,
		WorkerBusy:       busy,
		BytesTransferred: c.bytes,
		Messages:         c.msgs,
		TasksRun:         c.tasks,
	}
}

// Elapsed returns the simulated makespan so far.
func (c *Cluster) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// LoadRatio returns max/min cumulative worker time — the paper's
// "un-balanced ratio" (Figure 16). Workers that never ran anything are
// ignored; the ratio is 1 when fewer than two workers ran.
func (c *Cluster) LoadRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var min, max time.Duration
	seen := 0
	for _, t := range c.total {
		if t == 0 {
			continue
		}
		if seen == 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
		seen++
	}
	if seen < 2 || min == 0 {
		return 1
	}
	return float64(max) / float64(min)
}

// Reset clears all accounting but keeps the configuration.
func (c *Cluster) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for w := range c.total {
		c.total[w] = 0
		c.stage[w] = 0
	}
	c.elapsed = 0
	c.bytes = 0
	c.msgs = 0
	c.tasks = 0
}
