package cluster

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesAllTasks(t *testing.T) {
	c := New(DefaultConfig(4))
	var n atomic.Int64
	var tasks []Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, Task{Worker: i % 4, Fn: func() { n.Add(1) }})
	}
	c.Run(tasks)
	if n.Load() != 40 {
		t.Fatalf("ran %d tasks, want 40", n.Load())
	}
	m := c.Metrics()
	if m.TasksRun != 40 {
		t.Errorf("TasksRun = %d", m.TasksRun)
	}
}

func TestSameWorkerTasksSequential(t *testing.T) {
	c := New(DefaultConfig(2))
	var cur, maxConc atomic.Int64
	var tasks []Task
	for i := 0; i < 10; i++ {
		tasks = append(tasks, Task{Worker: 0, Fn: func() {
			v := cur.Add(1)
			for {
				m := maxConc.Load()
				if v <= m || maxConc.CompareAndSwap(m, v) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}})
	}
	c.Run(tasks)
	if maxConc.Load() != 1 {
		t.Errorf("same-worker tasks overlapped: max concurrency %d", maxConc.Load())
	}
}

func TestElapsedIsMakespanNotSum(t *testing.T) {
	c := New(DefaultConfig(4))
	var tasks []Task
	for w := 0; w < 4; w++ {
		tasks = append(tasks, Task{Worker: w, Fn: func() { time.Sleep(20 * time.Millisecond) }})
	}
	c.Run(tasks)
	el := c.Elapsed()
	if el < 15*time.Millisecond {
		t.Errorf("elapsed %v too small", el)
	}
	// Structural property (robust to scheduler noise on loaded hosts):
	// the makespan is the max per-worker time, so with 4 near-equal
	// workers it must sit well below the sum of their busy times.
	var sum, max time.Duration
	for _, b := range c.Metrics().WorkerBusy {
		sum += b
		if b > max {
			max = b
		}
	}
	if el != max {
		t.Errorf("elapsed %v != max worker busy %v", el, max)
	}
	if el*2 > sum {
		t.Errorf("elapsed %v looks like a sum (Σ busy = %v), not a makespan", el, sum)
	}
}

func TestStagesAccumulate(t *testing.T) {
	c := New(DefaultConfig(2))
	stage := []Task{{Worker: 0, Fn: func() { time.Sleep(10 * time.Millisecond) }}}
	c.Run(stage)
	first := c.Elapsed()
	c.Run(stage)
	if c.Elapsed() <= first {
		t.Error("second stage did not extend elapsed time")
	}
}

func TestTransferAccounting(t *testing.T) {
	c := New(DefaultConfig(4))
	c.Transfer(0, 1, 125_000_000) // 1 second at Gigabit
	m := c.Metrics()
	if m.BytesTransferred != 125_000_000 || m.Messages != 1 {
		t.Errorf("metrics = %+v", m)
	}
	// Transfer time lands in the *stage* clock and is folded at the next
	// barrier.
	c.Run([]Task{{Worker: 0, Fn: func() {}}})
	if el := c.Elapsed(); el < time.Second {
		t.Errorf("1s transfer not reflected in elapsed: %v", el)
	}
	// Self-transfer and zero bytes are free.
	before := c.Metrics()
	c.Transfer(2, 2, 1000)
	c.Transfer(0, 1, 0)
	after := c.Metrics()
	if after.BytesTransferred != before.BytesTransferred || after.Messages != before.Messages {
		t.Error("self/zero transfer should not be accounted")
	}
}

func TestBroadcast(t *testing.T) {
	c := New(DefaultConfig(4))
	c.Broadcast(0, 1000)
	m := c.Metrics()
	if m.Messages != 3 { // to the 3 other workers; self is free
		t.Errorf("broadcast messages = %d, want 3", m.Messages)
	}
	if m.BytesTransferred != 3000 {
		t.Errorf("broadcast bytes = %d, want 3000", m.BytesTransferred)
	}
}

func TestLoadRatio(t *testing.T) {
	c := New(DefaultConfig(4))
	if r := c.LoadRatio(); r != 1 {
		t.Errorf("idle cluster ratio = %v", r)
	}
	c.Run([]Task{
		{Worker: 0, Fn: func() { time.Sleep(40 * time.Millisecond) }},
		{Worker: 1, Fn: func() { time.Sleep(10 * time.Millisecond) }},
	})
	r := c.LoadRatio()
	if r < 1.5 {
		t.Errorf("imbalanced stage ratio = %v, want > 1.5", r)
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig(2))
	c.Run([]Task{{Worker: 0, Fn: func() { time.Sleep(time.Millisecond) }}})
	c.Transfer(0, 1, 100)
	c.Reset()
	m := c.Metrics()
	if m.Elapsed != 0 || m.BytesTransferred != 0 || m.TasksRun != 0 {
		t.Errorf("reset incomplete: %+v", m)
	}
}

func TestInvalidWorkerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid worker id should panic")
		}
	}()
	c := New(DefaultConfig(2))
	c.Run([]Task{{Worker: 7, Fn: func() {}}})
}

func TestMinimumOneWorker(t *testing.T) {
	c := New(Config{Workers: 0})
	if c.Workers() != 1 {
		t.Errorf("workers = %d, want 1", c.Workers())
	}
	c = New(Config{Workers: -3})
	if c.Workers() != 1 {
		t.Errorf("workers = %d, want 1", c.Workers())
	}
}

func TestParallelismAcrossWorkers(t *testing.T) {
	// With enough physical cores, distinct workers overlap in real time.
	c := New(DefaultConfig(4))
	start := time.Now()
	var tasks []Task
	for w := 0; w < 4; w++ {
		tasks = append(tasks, Task{Worker: w, Fn: func() { time.Sleep(30 * time.Millisecond) }})
	}
	c.Run(tasks)
	real := time.Since(start)
	if real > 110*time.Millisecond {
		t.Logf("low physical parallelism (GOMAXPROCS small?): %v", real)
	}
}

// Straggler injection: one worker is artificially slowed; the makespan
// must track the straggler while other workers' clocks stay small — the
// observable the paper's load-balancing mechanisms act on.
func TestStragglerInjection(t *testing.T) {
	c := New(DefaultConfig(4))
	var tasks []Task
	for w := 0; w < 4; w++ {
		w := w
		delay := 5 * time.Millisecond
		if w == 3 {
			delay = 60 * time.Millisecond // injected straggler
		}
		tasks = append(tasks, Task{Worker: w, Fn: func() { time.Sleep(delay) }})
	}
	c.Run(tasks)
	m := c.Metrics()
	if m.Elapsed < 50*time.Millisecond {
		t.Errorf("makespan %v does not reflect the straggler", m.Elapsed)
	}
	if r := c.LoadRatio(); r < 5 {
		t.Errorf("load ratio %v too low for a 12x straggler", r)
	}
	if m.WorkerBusy[3] < 10*m.WorkerBusy[0]/2 {
		t.Errorf("per-worker accounting wrong: %v", m.WorkerBusy)
	}
}

// A stage with tasks on a single worker serializes: the makespan is the
// sum, not the max — the "barrier costs" DFT pays.
func TestSingleWorkerSerialization(t *testing.T) {
	c := New(DefaultConfig(4))
	var tasks []Task
	for i := 0; i < 5; i++ {
		tasks = append(tasks, Task{Worker: 0, Fn: func() { time.Sleep(8 * time.Millisecond) }})
	}
	c.Run(tasks)
	if el := c.Elapsed(); el < 35*time.Millisecond {
		t.Errorf("5 serial 8ms tasks took %v simulated; want >= 40ms", el)
	}
}
