// Package mining builds the trajectory-analytics operations the paper's
// related work surveys (Section 2.3: clustering, frequent routes) on top
// of the DITA engine's similarity primitives — the "analytics" in
// Distributed In-memory Trajectory Analytics.
//
// Both operations reduce to the engine's search/join:
//
//   - Cluster: density-peaks-flavored medoid clustering. Similarity
//     neighborhoods come from threshold searches, medoids are chosen by
//     descending neighborhood size, and members attach to the first medoid
//     within τ — one pass over the τ-similarity graph, no iteration.
//   - FrequentRoutes: the connected components of the τ-similarity graph
//     with at least MinSupport members, ranked by support, each summarized
//     by its medoid — "frequent trajectory based navigation" (Section 1).
package mining

import (
	"sort"

	"dita/internal/core"
	"dita/internal/traj"
)

// Cluster is one group of mutually similar trajectories.
type Cluster struct {
	// Medoid is the representative trajectory (the member with the most
	// τ-neighbors inside the cluster).
	Medoid *traj.T
	// Members holds the cluster's trajectories, medoid included.
	Members []*traj.T
}

// Support returns the cluster size.
func (c *Cluster) Support() int { return len(c.Members) }

// Options tunes the mining operations.
type Options struct {
	// Tau is the similarity threshold defining the neighborhood graph.
	Tau float64
	// MinSupport drops clusters/routes with fewer members (default 2).
	MinSupport int
}

// Clusters groups the engine's dataset by similarity: trajectories within
// Tau of a chosen medoid join its cluster; trajectories with no medoid
// within Tau become singleton clusters (dropped unless MinSupport <= 1).
// Clusters are returned by descending support, ties by medoid ID.
func Clusters(e *core.Engine, opts Options) []*Cluster {
	if opts.MinSupport < 1 {
		opts.MinSupport = 2
	}
	d := e.Dataset()
	n := d.Len()
	if n == 0 {
		return nil
	}
	// Neighborhoods via batched threshold search (the engine parallelizes
	// across its workers).
	results := e.SearchBatch(d.Trajs, opts.Tau)
	idx := make(map[int]int, n) // traj ID -> position
	for i, t := range d.Trajs {
		idx[t.ID] = i
	}
	neighbors := make([][]int, n)
	for i, res := range results {
		for _, r := range res {
			neighbors[i] = append(neighbors[i], idx[r.Traj.ID])
		}
	}
	// Candidate medoids by descending degree (deterministic tie-break).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := len(neighbors[order[a]]), len(neighbors[order[b]])
		if da != db {
			return da > db
		}
		return d.Trajs[order[a]].ID < d.Trajs[order[b]].ID
	})
	assigned := make([]bool, n)
	var out []*Cluster
	for _, i := range order {
		if assigned[i] {
			continue
		}
		c := &Cluster{Medoid: d.Trajs[i]}
		for _, j := range neighbors[i] {
			if !assigned[j] {
				assigned[j] = true
				c.Members = append(c.Members, d.Trajs[j])
			}
		}
		if c.Support() >= opts.MinSupport {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support() != out[b].Support() {
			return out[a].Support() > out[b].Support()
		}
		return out[a].Medoid.ID < out[b].Medoid.ID
	})
	return out
}

// Route is a frequent route: a connected component of the τ-similarity
// graph, summarized by its highest-degree member.
type Route struct {
	// Representative is the component's highest-degree trajectory.
	Representative *traj.T
	// Support is the number of trips on the route.
	Support int
	// TripIDs lists the member trajectory IDs, ascending.
	TripIDs []int
}

// FrequentRoutes extracts the frequently driven routes: connected
// components of the τ-similarity graph with at least MinSupport trips,
// by descending support.
func FrequentRoutes(e *core.Engine, opts Options) []Route {
	if opts.MinSupport < 1 {
		opts.MinSupport = 2
	}
	d := e.Dataset()
	n := d.Len()
	if n == 0 {
		return nil
	}
	results := e.SearchBatch(d.Trajs, opts.Tau)
	idx := make(map[int]int, n)
	for i, t := range d.Trajs {
		idx[t.ID] = i
	}
	// Union-find over the similarity edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	degree := make([]int, n)
	for i, res := range results {
		for _, r := range res {
			j := idx[r.Traj.ID]
			if j != i {
				union(i, j)
				degree[i]++
			}
		}
	}
	comps := map[int][]int{}
	for i := 0; i < n; i++ {
		comps[find(i)] = append(comps[find(i)], i)
	}
	var out []Route
	for _, members := range comps {
		if len(members) < opts.MinSupport {
			continue
		}
		best := members[0]
		ids := make([]int, 0, len(members))
		for _, m := range members {
			ids = append(ids, d.Trajs[m].ID)
			if degree[m] > degree[best] || (degree[m] == degree[best] && d.Trajs[m].ID < d.Trajs[best].ID) {
				best = m
			}
		}
		sort.Ints(ids)
		out = append(out, Route{Representative: d.Trajs[best], Support: len(members), TripIDs: ids})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Support != out[b].Support {
			return out[a].Support > out[b].Support
		}
		return out[a].Representative.ID < out[b].Representative.ID
	})
	return out
}

// Outliers returns trajectories with fewer than minNeighbors τ-neighbors
// (excluding themselves) — the partition-and-detect style outlier notion
// of the related work, reduced to neighborhood counting.
func Outliers(e *core.Engine, tau float64, minNeighbors int) []*traj.T {
	d := e.Dataset()
	results := e.SearchBatch(d.Trajs, tau)
	var out []*traj.T
	for i, res := range results {
		others := 0
		for _, r := range res {
			if r.Traj.ID != d.Trajs[i].ID {
				others++
			}
		}
		if others < minNeighbors {
			out = append(out, d.Trajs[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}
