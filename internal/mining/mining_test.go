package mining

import (
	"math/rand"
	"testing"

	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/traj"
)

// plantedDataset builds trajectories with known cluster structure: k route
// templates, each followed by size trips with tiny noise, plus outliers
// far from everything.
func plantedDataset(k, size, outliers int, seed int64) (*traj.Dataset, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	var trajs []*traj.T
	truth := make([][]int, k)
	id := 0
	for c := 0; c < k; c++ {
		// Template: a short walk around a well-separated base point.
		base := geom.Point{X: float64(c) * 10, Y: float64(c%3) * 10}
		tmpl := make([]geom.Point, 8)
		x, y := base.X, base.Y
		for i := range tmpl {
			x += rng.Float64() * 0.3
			y += rng.Float64() * 0.3
			tmpl[i] = geom.Point{X: x, Y: y}
		}
		for s := 0; s < size; s++ {
			pts := make([]geom.Point, len(tmpl))
			for i, p := range tmpl {
				pts[i] = geom.Point{X: p.X + rng.NormFloat64()*0.001, Y: p.Y + rng.NormFloat64()*0.001}
			}
			trajs = append(trajs, &traj.T{ID: id, Points: pts})
			truth[c] = append(truth[c], id)
			id++
		}
	}
	for o := 0; o < outliers; o++ {
		// Far away, each in its own corner.
		base := geom.Point{X: -100 - float64(o)*50, Y: -100 - float64(o)*50}
		pts := make([]geom.Point, 6)
		x, y := base.X, base.Y
		for i := range pts {
			x += rng.Float64()
			y += rng.Float64()
			pts[i] = geom.Point{X: x, Y: y}
		}
		trajs = append(trajs, &traj.T{ID: id, Points: pts})
		id++
	}
	return traj.NewDataset("planted", trajs), truth
}

func buildEngine(t *testing.T, d *traj.Dataset) *core.Engine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.NG = 3
	opts.Trie.MinNode = 2
	opts.Cluster = cluster.New(cluster.DefaultConfig(4))
	e, err := core.NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestClustersRecoverPlanted(t *testing.T) {
	d, truth := plantedDataset(5, 12, 3, 1)
	e := buildEngine(t, d)
	clusters := Clusters(e, Options{Tau: 0.5, MinSupport: 2})
	if len(clusters) != 5 {
		t.Fatalf("found %d clusters, want 5", len(clusters))
	}
	// Each found cluster must be exactly one planted group.
	for _, c := range clusters {
		if c.Support() != 12 {
			t.Fatalf("cluster support %d, want 12", c.Support())
		}
		group := -1
		for g, ids := range truth {
			for _, id := range ids {
				if id == c.Medoid.ID {
					group = g
				}
			}
		}
		if group < 0 {
			t.Fatal("medoid is an outlier?")
		}
		want := map[int]bool{}
		for _, id := range truth[group] {
			want[id] = true
		}
		for _, m := range c.Members {
			if !want[m.ID] {
				t.Fatalf("cluster mixes groups: member %d not in group %d", m.ID, group)
			}
		}
	}
}

func TestFrequentRoutesRecoverPlanted(t *testing.T) {
	d, truth := plantedDataset(4, 10, 2, 2)
	e := buildEngine(t, d)
	routes := FrequentRoutes(e, Options{Tau: 0.5, MinSupport: 3})
	if len(routes) != 4 {
		t.Fatalf("found %d routes, want 4", len(routes))
	}
	for _, r := range routes {
		if r.Support != 10 {
			t.Fatalf("route support %d, want 10", r.Support)
		}
		// TripIDs must be exactly one planted group.
		matched := false
		for _, ids := range truth {
			if len(ids) != len(r.TripIDs) {
				continue
			}
			same := true
			for i := range ids {
				if ids[i] != r.TripIDs[i] {
					same = false
					break
				}
			}
			if same {
				matched = true
			}
		}
		if !matched {
			t.Fatalf("route members %v match no planted group", r.TripIDs)
		}
	}
}

func TestOutliersDetected(t *testing.T) {
	d, _ := plantedDataset(3, 10, 4, 3)
	e := buildEngine(t, d)
	out := Outliers(e, 0.5, 1)
	if len(out) != 4 {
		t.Fatalf("found %d outliers, want 4", len(out))
	}
	for _, o := range out {
		if o.ID < 30 { // first 30 ids are cluster members
			t.Fatalf("cluster member %d flagged as outlier", o.ID)
		}
	}
}

func TestMiningDegenerate(t *testing.T) {
	d := traj.NewDataset("tiny", []*traj.T{
		{ID: 0, Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		{ID: 1, Points: []geom.Point{{X: 100, Y: 100}, {X: 101, Y: 101}}},
	})
	e := buildEngine(t, d)
	// No pair is similar: no clusters at MinSupport 2.
	if got := Clusters(e, Options{Tau: 0.1}); len(got) != 0 {
		t.Errorf("clusters = %v", got)
	}
	// MinSupport 1 keeps singletons.
	if got := Clusters(e, Options{Tau: 0.1, MinSupport: 1}); len(got) != 2 {
		t.Errorf("singleton clusters = %d, want 2", len(got))
	}
	if got := FrequentRoutes(e, Options{Tau: 0.1, MinSupport: 2}); len(got) != 0 {
		t.Errorf("routes = %v", got)
	}
	// Everything is an outlier at a tiny tau.
	if got := Outliers(e, 0.1, 1); len(got) != 2 {
		t.Errorf("outliers = %d, want 2", len(got))
	}
}

// Every trajectory lands in at most one cluster, and clusters are sorted
// by support.
func TestClusterInvariants(t *testing.T) {
	d, _ := plantedDataset(6, 8, 5, 4)
	e := buildEngine(t, d)
	clusters := Clusters(e, Options{Tau: 0.5, MinSupport: 1})
	seen := map[int]bool{}
	prev := 1 << 30
	for _, c := range clusters {
		if c.Support() > prev {
			t.Fatal("clusters not sorted by support")
		}
		prev = c.Support()
		for _, m := range c.Members {
			if seen[m.ID] {
				t.Fatalf("trajectory %d in two clusters", m.ID)
			}
			seen[m.ID] = true
		}
	}
	if len(seen) != d.Len() {
		t.Fatalf("MinSupport=1 clustering covered %d of %d", len(seen), d.Len())
	}
}
