package trie

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/traj"
)

// qworld is a quick.Generator producing a small random dataset, a query,
// and a trie config — the full input space of a trie search.
type qworld struct {
	Trajs []*traj.T
	Query []geom.Point
	Cfg   Config
	Tau   float64
}

// Generate implements quick.Generator.
func (qworld) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 5 + rng.Intn(40)
	ts := make([]*traj.T, n)
	for i := range ts {
		ts[i] = qtrajN(rng, i, 2+rng.Intn(10))
	}
	w := qworld{
		Trajs: ts,
		Query: qtrajN(rng, -1, 2+rng.Intn(10)).Points,
		Cfg: Config{
			K:        rng.Intn(5),
			NLAlign:  2 + rng.Intn(5),
			NLPivot:  2 + rng.Intn(3),
			MinNode:  1 + rng.Intn(3),
			Strategy: pivot.Strategy(rng.Intn(3)),
		},
		Tau: rng.Float64() * 6,
	}
	return reflect.ValueOf(w)
}

func qtrajN(rng *rand.Rand, id, n int) *traj.T {
	pts := make([]geom.Point, n)
	x, y := rng.Float64()*8, rng.Float64()*8
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geom.Point{X: x, Y: y}
	}
	return &traj.T{ID: id, Points: pts}
}

// The fundamental trie property on arbitrary quick-generated worlds: the
// candidate set is a superset of the true result set, for every measure.
func TestQuickTrieNoFalseNegatives(t *testing.T) {
	measures := []measure.Measure{
		measure.DTW{}, measure.Frechet{}, measure.EDR{Eps: 0.7},
		measure.LCSS{Eps: 0.7, Delta: 2}, measure.ERP{},
	}
	f := func(w qworld) bool {
		tr := Build(w.Trajs, w.Cfg)
		for _, m := range measures {
			tau := w.Tau
			if m.Accumulation() == measure.AccumEdit {
				tau = float64(int(w.Tau)) // integer edit budgets
			}
			cands := map[int]bool{}
			for _, i := range tr.Search(w.Query, m, tau, nil) {
				cands[i] = true
			}
			for i, cand := range w.Trajs {
				if m.Distance(cand.Points, w.Query) <= tau && !cands[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Every trajectory appears in exactly one leaf (the trie partitions its
// input).
func TestQuickTriePartitionsInput(t *testing.T) {
	f := func(w qworld) bool {
		tr := Build(w.Trajs, w.Cfg)
		seen := make([]int, len(w.Trajs))
		var walk func(n *node)
		walk = func(n *node) {
			for _, i := range n.leafIdx {
				seen[i]++
			}
			for _, c := range n.children {
				walk(c)
			}
		}
		walk(tr.root)
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Node MBRs must cover the level point of every trajectory beneath them.
func TestQuickTrieMBRInvariant(t *testing.T) {
	f := func(w qworld) bool {
		tr := Build(w.Trajs, w.Cfg)
		ok := true
		var walk func(n *node, members []int)
		collect := func(n *node) []int {
			var out []int
			var rec func(*node)
			rec = func(m *node) {
				out = append(out, m.leafIdx...)
				for _, c := range m.children {
					rec(c)
				}
			}
			rec(n)
			return out
		}
		walk = func(n *node, _ []int) {
			if n.level >= 0 && !n.mbr.IsEmpty() {
				for _, i := range collect(n) {
					if n.level < len(tr.ip[i]) && !n.mbr.Contains(tr.ip[i][n.level]) {
						ok = false
					}
				}
			}
			for _, c := range n.children {
				walk(c, nil)
			}
		}
		walk(tr.root, nil)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
