package trie

import (
	"encoding/binary"
	"fmt"
	"math"

	"dita/internal/geom"
	"dita/internal/pivot"
	"dita/internal/traj"
)

// Binary serialization of the trie for partition snapshots (internal/snap).
//
// The encoding is canonical: building a trie over the same trajectories
// with the same Config and encoding it always produces the same bytes, and
// DecodeBinary(AppendBinary(t)) re-encodes bit-exactly. That determinism is
// what lets snapshot tests assert a cold-started index is byte-identical
// to a fresh build, and what makes content fingerprints meaningful.
//
// Layout (little-endian, fixed width):
//
//	u32 ×5   Config: K, NLAlign, NLPivot, MinNode, Strategy
//	u32      trajectory count (must equal len(trajs) at decode)
//	per trajectory: u32 indexing-point count, then ×2 f64 per point
//	node tree, preorder:
//	  i32    level
//	  f64 ×4 MBR (Min.X, Min.Y, Max.X, Max.Y; EmptyMBR's ±Inf round-trips)
//	  u8     1 = leaf, 0 = internal
//	  leaf:     u32 index count, then u32 per index (into trajs)
//	  internal: u32 child count, then children recursively
//
// The trajectories themselves are not part of the encoding: the caller
// stores them separately (the snapshot's trajectory section) and passes
// the identical slice to DecodeBinary, preserving the clustered-index
// property that leaves index into Trie.Trajs.

// AppendBinary appends the trie's canonical binary encoding to buf and
// returns the extended slice.
func (t *Trie) AppendBinary(buf []byte) []byte {
	u32 := func(v int) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	f64 := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	u32(t.cfg.K)
	u32(t.cfg.NLAlign)
	u32(t.cfg.NLPivot)
	u32(t.cfg.MinNode)
	u32(int(t.cfg.Strategy))
	u32(len(t.Trajs))
	for i := range t.Trajs {
		u32(len(t.ip[i]))
		for _, p := range t.ip[i] {
			f64(p.X)
			f64(p.Y)
		}
	}
	var walk func(n *node)
	walk = func(n *node) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(n.level)))
		f64(n.mbr.Min.X)
		f64(n.mbr.Min.Y)
		f64(n.mbr.Max.X)
		f64(n.mbr.Max.Y)
		if n.isLeaf() {
			buf = append(buf, 1)
			u32(len(n.leafIdx))
			for _, i := range n.leafIdx {
				u32(i)
			}
			return
		}
		buf = append(buf, 0)
		u32(len(n.children))
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root == nil {
		// A trie always has a root after Build; encode an explicit marker
		// so decode can reject the impossible case instead of guessing.
		buf = append(buf, 0)
		return buf
	}
	buf = append(buf, 1)
	walk(t.root)
	return buf
}

// serialReader is a strict bounds-checked cursor over an encoded trie.
type serialReader struct {
	data []byte
	off  int
	err  error
}

func (r *serialReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("trie: decode: "+format, args...)
	}
}

func (r *serialReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *serialReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *serialReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// DecodeBinary reconstructs a trie from data produced by AppendBinary,
// over the same trajectory slice the encoded trie indexed. It is strict:
// any structural inconsistency (out-of-range leaf index, counts that
// outrun the buffer, trailing bytes) is an error, never a panic — the
// caller treats a failed decode as a corrupt snapshot and rebuilds.
func DecodeBinary(data []byte, trajs []*traj.T) (*Trie, error) {
	r := &serialReader{data: data}
	t := &Trie{}
	t.cfg.K = int(r.u32())
	t.cfg.NLAlign = int(r.u32())
	t.cfg.NLPivot = int(r.u32())
	t.cfg.MinNode = int(r.u32())
	// Strategy is only consulted at Build time; a decoded trie never
	// rebuilds, so any integer value round-trips safely.
	t.cfg.Strategy = pivot.Strategy(r.u32())
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n != len(trajs) {
		return nil, fmt.Errorf("trie: decode: encoded for %d trajectories, caller holds %d", n, len(trajs))
	}
	t.Trajs = trajs
	t.ip = make([][]geom.Point, n)
	for i := 0; i < n; i++ {
		np := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		// Each point costs 16 bytes; reject counts the buffer cannot hold
		// before allocating.
		if np < 0 || np > (len(r.data)-r.off)/16 {
			return nil, fmt.Errorf("trie: decode: indexing-point count %d exceeds buffer", np)
		}
		pts := make([]geom.Point, np)
		for j := range pts {
			pts[j] = geom.Point{X: r.f64(), Y: r.f64()}
		}
		t.ip[i] = pts
	}
	switch r.u8() {
	case 0:
		if r.err == nil && r.off != len(data) {
			return nil, fmt.Errorf("trie: decode: %d trailing bytes", len(data)-r.off)
		}
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("trie: decode: rootless trie")
	case 1:
	default:
		return nil, fmt.Errorf("trie: decode: bad root marker")
	}
	root, err := decodeNode(r, len(trajs), &t.nodes)
	if err != nil {
		return nil, err
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("trie: decode: %d trailing bytes", len(data)-r.off)
	}
	t.root = root
	return t, nil
}

// decodeNode reads one preorder-encoded node and its subtree.
func decodeNode(r *serialReader, nTrajs int, nodes *int) (*node, error) {
	n := &node{level: int(int32(r.u32()))}
	n.mbr = geom.MBR{
		Min: geom.Point{X: r.f64(), Y: r.f64()},
		Max: geom.Point{X: r.f64(), Y: r.f64()},
	}
	leaf := r.u8()
	cnt := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	*nodes++
	switch leaf {
	case 1:
		if cnt < 0 || cnt > (len(r.data)-r.off)/4 {
			return nil, fmt.Errorf("trie: decode: leaf count %d exceeds buffer", cnt)
		}
		n.leafIdx = make([]int, cnt)
		for i := range n.leafIdx {
			idx := int(r.u32())
			if idx < 0 || idx >= nTrajs {
				r.fail("leaf index %d out of range [0,%d)", idx, nTrajs)
			}
			n.leafIdx[i] = idx
		}
		if cnt == 0 {
			// Preserve the leaf invariant (leafIdx non-nil) for isLeaf.
			n.leafIdx = []int{}
		}
		if r.err != nil {
			return nil, r.err
		}
		return n, nil
	case 0:
		// A child needs at least a level, MBR, marker and count: 41 bytes.
		if cnt < 0 || cnt > (len(r.data)-r.off)/41 {
			return nil, fmt.Errorf("trie: decode: child count %d exceeds buffer", cnt)
		}
		for i := 0; i < cnt; i++ {
			c, err := decodeNode(r, nTrajs, nodes)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		if len(n.children) == 0 {
			return nil, fmt.Errorf("trie: decode: internal node with no children")
		}
		return n, nil
	default:
		return nil, fmt.Errorf("trie: decode: bad node marker %d", leaf)
	}
}
