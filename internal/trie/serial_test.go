package trie

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

func serialTrajs(n int, seed int64) []*traj.T {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*traj.T, n)
	for i := range out {
		np := 2 + rng.Intn(15)
		pts := make([]geom.Point, np)
		x, y := rng.Float64()*10, rng.Float64()*10
		for j := range pts {
			x += rng.NormFloat64() * 0.05
			y += rng.NormFloat64() * 0.05
			pts[j] = geom.Point{X: x, Y: y}
		}
		out[i] = &traj.T{ID: i, Points: pts}
	}
	return out
}

func TestSerialRoundTrip(t *testing.T) {
	trajs := serialTrajs(120, 42)
	built := Build(trajs, Config{K: 3, NLAlign: 4, NLPivot: 3, MinNode: 4})
	enc := built.AppendBinary(nil)

	dec, err := DecodeBinary(enc, trajs)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	// Canonical encoding: the decoded trie re-encodes bit-exactly.
	if !bytes.Equal(dec.AppendBinary(nil), enc) {
		t.Fatal("decoded trie does not re-encode to the same bytes")
	}
	if dec.nodes != built.nodes {
		t.Fatalf("node count: decoded %d, built %d", dec.nodes, built.nodes)
	}
	if dec.cfg != built.cfg {
		t.Fatalf("config: decoded %+v, built %+v", dec.cfg, built.cfg)
	}

	// The decoded trie must answer queries identically to the built one.
	m := measure.DTW{}
	for qi := 0; qi < 10; qi++ {
		q := trajs[qi*7%len(trajs)].Points
		for _, tau := range []float64{0.01, 0.1, 1.0} {
			want := built.Search(q, m, tau, nil)
			got := dec.Search(q, m, tau, nil)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("query %d tau %g: built %v, decoded %v", qi, tau, want, got)
			}
		}
	}
}

func TestSerialDeterministic(t *testing.T) {
	trajs := serialTrajs(60, 7)
	a := Build(trajs, Config{K: 2, NLAlign: 3, NLPivot: 2, MinNode: 8}).AppendBinary(nil)
	b := Build(trajs, Config{K: 2, NLAlign: 3, NLPivot: 2, MinNode: 8}).AppendBinary(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("two builds over identical input encode differently")
	}
}

// TestSerialDecodeRejectsCorruption walks every truncation and a bit flip
// in every byte: DecodeBinary must fail or produce a trie that re-encodes
// differently — and must never panic or accept structural nonsense like
// out-of-range leaf indexes. (In the snapshot format a CRC guards this
// payload; this test proves the decoder is safe even without it.)
func TestSerialDecodeRejectsCorruption(t *testing.T) {
	trajs := serialTrajs(25, 9)
	enc := Build(trajs, Config{K: 2, NLAlign: 3, NLPivot: 2, MinNode: 4}).AppendBinary(nil)

	for n := 0; n < len(enc); n++ {
		if _, err := DecodeBinary(enc[:n], trajs); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(enc))
		}
	}
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		dec, err := DecodeBinary(mut, trajs)
		if err != nil {
			continue
		}
		// Some flips (e.g. in an MBR float) still decode; they must at
		// least survive re-encoding and never corrupt shared state.
		if dec == nil {
			t.Fatalf("flip at byte %d: nil trie without error", i)
		}
		for _, n := range collectLeafIdx(dec.root) {
			if n < 0 || n >= len(trajs) {
				t.Fatalf("flip at byte %d: leaf index %d out of range", i, n)
			}
		}
	}

	if _, err := DecodeBinary(enc, trajs[:len(trajs)-1]); err == nil {
		t.Fatal("decode with wrong trajectory slice succeeded")
	}
	if _, err := DecodeBinary(nil, nil); err == nil {
		t.Fatal("decode of empty buffer succeeded")
	}
}

func collectLeafIdx(n *node) []int {
	if n == nil {
		return nil
	}
	if n.isLeaf() {
		return n.leafIdx
	}
	var out []int
	for _, c := range n.children {
		out = append(out, collectLeafIdx(c)...)
	}
	return out
}
