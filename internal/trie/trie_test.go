package trie

import (
	"math/rand"
	"sort"
	"testing"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/traj"
)

func figure1Trajs() []*traj.T {
	return []*traj.T{
		{ID: 1, Points: []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}},
		{ID: 2, Points: []geom.Point{{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}},
		{ID: 3, Points: []geom.Point{{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 3}, {X: 4, Y: 5}, {X: 4, Y: 6}, {X: 5, Y: 6}}},
		{ID: 4, Points: []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 3}, {X: 3, Y: 7}, {X: 7, Y: 5}}},
		{ID: 5, Points: []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 7}, {X: 3, Y: 3}, {X: 7, Y: 5}}},
	}
}

// paperConfig mirrors Figure 5: NL = 2, K = 2, neighbor strategy, and a
// MinNode of 1 so the full depth is built.
func paperConfig() Config {
	return Config{K: 2, NLAlign: 2, NLPivot: 2, MinNode: 1, Strategy: pivot.Neighbor}
}

func randTraj(rng *rand.Rand, id, n int) *traj.T {
	pts := make([]geom.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64() * 0.5
		y += rng.NormFloat64() * 0.5
		pts[i] = geom.Point{X: x, Y: y}
	}
	return &traj.T{ID: id, Points: pts}
}

func randTrajs(rng *rand.Rand, n int) []*traj.T {
	ts := make([]*traj.T, n)
	for i := range ts {
		ts[i] = randTraj(rng, i, 2+rng.Intn(15))
	}
	return ts
}

// TestPaperExample52 reproduces Example 5.2: querying the Figure 5 trie
// with Q = T4 and τ = 3 yields T4 as the final candidate, and verification
// confirms exactly {T4}.
func TestPaperExample52(t *testing.T) {
	ts := figure1Trajs()
	tr := Build(ts, paperConfig())
	q := ts[3].Points // T4
	cands := tr.Search(q, measure.DTW{}, 3, nil)
	found := false
	for _, i := range cands {
		if tr.Trajs[i].ID == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("T4 must be a candidate for its own query, got %v", ids(tr, cands))
	}
	// Verified answers: exactly T4.
	var verified []int
	for _, i := range cands {
		if d := (measure.DTW{}).Distance(tr.Trajs[i].Points, q); d <= 3 {
			verified = append(verified, tr.Trajs[i].ID)
		}
	}
	if len(verified) != 1 || verified[0] != 4 {
		t.Errorf("verified = %v, want [4]", verified)
	}
}

func ids(tr *Trie, idxs []int) []int {
	out := make([]int, len(idxs))
	for i, j := range idxs {
		out[i] = tr.Trajs[j].ID
	}
	sort.Ints(out)
	return out
}

// The filter must never drop a true answer: for every measure, trie
// search candidates must be a superset of the brute-force result set.
func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	measures := []measure.Measure{
		measure.DTW{},
		measure.Frechet{},
		measure.EDR{Eps: 0.5},
		measure.LCSS{Eps: 0.5, Delta: 3},
		measure.ERP{},
		measure.Hausdorff{},
	}
	for iter := 0; iter < 30; iter++ {
		ts := randTrajs(rng, 60)
		cfg := Config{
			K:        1 + rng.Intn(4),
			NLAlign:  2 + rng.Intn(6),
			NLPivot:  2 + rng.Intn(4),
			MinNode:  1 + rng.Intn(4),
			Strategy: pivot.Strategy(rng.Intn(3)),
		}
		tr := Build(ts, cfg)
		for _, m := range measures {
			q := randTraj(rng, -1, 2+rng.Intn(12)).Points
			var tau float64
			if m.Accumulation() == measure.AccumEdit {
				tau = float64(rng.Intn(8))
			} else {
				tau = rng.Float64() * 8
			}
			cands := map[int]bool{}
			for _, i := range tr.Search(q, m, tau, nil) {
				cands[i] = true
			}
			for i, cand := range ts {
				if d := m.Distance(cand.Points, q); d <= tau && !cands[i] {
					t.Fatalf("%s: trie dropped true answer traj %d (d=%v tau=%v cfg=%+v)",
						m.Name(), cand.ID, d, tau, cfg)
				}
			}
		}
	}
}

// Self-query must always return the trajectory itself as candidate.
func TestSelfQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ts := randTrajs(rng, 100)
	tr := Build(ts, DefaultConfig())
	for i, self := range ts {
		cands := tr.Search(self.Points, measure.DTW{}, 0.001, nil)
		ok := false
		for _, c := range cands {
			if c == i {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("traj %d missing from its own candidates", self.ID)
		}
	}
}

// The trie must prune: with a tiny threshold on well-spread data, the
// candidate count should be far below the dataset size.
func TestPruningPower(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]*traj.T, 500)
	for i := range ts {
		// Spread starting points widely so pruning has something to do.
		base := geom.Point{X: float64(i%25) * 10, Y: float64(i/25) * 10}
		pts := make([]geom.Point, 8)
		for j := range pts {
			pts[j] = geom.Point{X: base.X + rng.Float64(), Y: base.Y + rng.Float64()}
		}
		ts[i] = &traj.T{ID: i, Points: pts}
	}
	tr := Build(ts, DefaultConfig())
	var st Stats
	cands := tr.Search(ts[0].Points, measure.DTW{}, 1.0, &st)
	if len(cands) > 50 {
		t.Errorf("weak pruning: %d candidates of %d trajectories", len(cands), len(ts))
	}
	if st.Candidates != len(cands) {
		t.Errorf("stats.Candidates = %d, want %d", st.Candidates, len(cands))
	}
	if st.NodesVisited == 0 {
		t.Error("stats.NodesVisited not counted")
	}
}

func TestShortTrajectories(t *testing.T) {
	// Trajectories shorter than K+2 points must be indexed (exhausted
	// buckets) and still be findable.
	ts := []*traj.T{
		{ID: 0, Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}},
		{ID: 1, Points: []geom.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0.5}, {X: 1, Y: 1}}},
		{ID: 2, Points: []geom.Point{{X: 5, Y: 5}, {X: 6, Y: 6}}},
	}
	tr := Build(ts, Config{K: 4, NLAlign: 2, NLPivot: 2, MinNode: 1, Strategy: pivot.Neighbor})
	q := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	cands := tr.Search(q, measure.DTW{}, 0.5, nil)
	got := ids(tr, cands)
	// Trajectories 0 and 1 are near the query; 2 must be pruned.
	for _, want := range []int{0, 1} {
		if !containsInt(got, want) {
			t.Errorf("candidates %v missing %d", got, want)
		}
	}
	if containsInt(got, 2) {
		t.Errorf("far trajectory 2 not pruned: %v", got)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestEmptyAndDegenerate(t *testing.T) {
	tr := Build(nil, DefaultConfig())
	if got := tr.Search([]geom.Point{{X: 0, Y: 0}}, measure.DTW{}, 1, nil); len(got) != 0 {
		t.Errorf("empty trie returned %v", got)
	}
	ts := randTrajs(rand.New(rand.NewSource(4)), 10)
	tr = Build(ts, DefaultConfig())
	if got := tr.Search(nil, measure.DTW{}, 1, nil); got != nil {
		t.Errorf("empty query returned %v", got)
	}
	if tr.NodeCount() == 0 || tr.SizeBytes() == 0 || tr.Depth() < 0 {
		t.Error("size accounting broken")
	}
	if got := len(tr.Candidates()); got != 10 {
		t.Errorf("Candidates() = %d", got)
	}
}

func TestConfigSanitized(t *testing.T) {
	// Hostile config values must be clamped, not panic.
	ts := randTrajs(rand.New(rand.NewSource(5)), 30)
	tr := Build(ts, Config{K: -1, NLAlign: 0, NLPivot: -3, MinNode: 0})
	cands := tr.Search(ts[0].Points, measure.DTW{}, 100, nil)
	if len(cands) == 0 {
		t.Error("sanitized trie lost all data")
	}
}

// Deeper tries (larger K) must not lose answers and should generally not
// increase candidates.
func TestKMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ts := randTrajs(rng, 300)
	q := randTraj(rng, -1, 10).Points
	tau := 3.0
	prev := -1
	for _, k := range []int{0, 1, 2, 4, 6} {
		cfg := DefaultConfig()
		cfg.K = k
		cfg.MinNode = 1
		tr := Build(ts, cfg)
		n := len(tr.Search(q, measure.DTW{}, tau, nil))
		// Ground truth safety.
		for i, cand := range ts {
			if d := (measure.DTW{}).Distance(cand.Points, q); d <= tau {
				if !containsInt(tr.Search(q, measure.DTW{}, tau, nil), i) {
					t.Fatalf("K=%d dropped answer", k)
				}
			}
		}
		_ = prev
		prev = n
	}
}

// Fréchet accumulation (max) must not consume the threshold: a candidate
// whose every indexing point is within tau must survive even when the sum
// of level distances exceeds tau.
func TestFrechetMaxSemantics(t *testing.T) {
	// One trajectory at constant offset 0.9 from the query in every point.
	ts := []*traj.T{{ID: 0, Points: []geom.Point{{X: 0, Y: 0.9}, {X: 1, Y: 0.9}, {X: 2, Y: 0.9}, {X: 3, Y: 0.9}}}}
	q := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	tr := Build(ts, Config{K: 2, NLAlign: 2, NLPivot: 2, MinNode: 1, Strategy: pivot.Neighbor})
	// Sum of level dists = 4*0.9 = 3.6 > tau, but max = 0.9 <= tau = 1.
	cands := tr.Search(q, measure.Frechet{}, 1, nil)
	if len(cands) != 1 {
		t.Fatalf("Fréchet max semantics broken: candidates = %v", cands)
	}
	if d := (measure.Frechet{}).Distance(ts[0].Points, q); d > 1 {
		t.Fatalf("test setup wrong: Fréchet = %v", d)
	}
}
