// Package trie implements DITA's local index (Section 4.2.3): a trie-like
// multi-level structure over each partition's trajectories.
//
// Every trajectory T contributes a sequence of indexing points
// T_I = (t1, tm, tP1, ..., tPK) — its first point, last point, and K pivot
// points. Level 1 of the trie groups trajectories by their first point into
// NL STR tiles, level 2 by the last point, and levels 3..K+2 by successive
// pivot points; each node stores the MBR of its group's level point, and
// leaves store the trajectories themselves (a clustered index, which the
// paper contrasts with DFT's non-clustered segment index).
//
// Search descends the trie accumulating per-level lower bounds
// (Section 5.3): the remaining threshold shrinks level by level for
// sum-accumulating measures (DTW, ERP), stays fixed for max-accumulating
// ones (Fréchet), and counts edits for EDR/LCSS. The ordered-suffix
// optimization of Lemma 5.1 narrows the query suffix a pivot may align
// with for endpoint-anchored measures.
package trie

import (
	"context"
	"math"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/str"
	"dita/internal/traj"
)

// Config parameterizes trie construction.
type Config struct {
	// K is the number of pivot points per trajectory (Table 3: 2..6).
	K int
	// NLAlign is the fanout of the two align levels (first/last point).
	// The paper sets a larger fanout there ("we usually set a larger NL"
	// at the upper levels).
	NLAlign int
	// NLPivot is the fanout of the K pivot levels.
	NLPivot int
	// MinNode stops splitting when a group has at most this many
	// trajectories (the paper stops at 16).
	MinNode int
	// Strategy selects pivot points.
	Strategy pivot.Strategy
}

// DefaultConfig mirrors the paper's defaults scaled to laptop-size
// partitions: K=4, NL=32 on align levels, NL=8 on pivot levels, stop at 16.
func DefaultConfig() Config {
	return Config{K: 4, NLAlign: 32, NLPivot: 8, MinNode: 16, Strategy: pivot.Neighbor}
}

func (c Config) sanitized() Config {
	if c.K < 0 {
		c.K = 0
	}
	if c.NLAlign < 2 {
		c.NLAlign = 2
	}
	if c.NLPivot < 2 {
		c.NLPivot = 2
	}
	if c.MinNode < 1 {
		c.MinNode = 1
	}
	return c
}

// node is a trie node. level is the indexing-point position this node's
// MBR describes: 0 = first point, 1 = last point, 2+i = i-th pivot. The
// root has level -1 and an empty MBR.
type node struct {
	level    int
	mbr      geom.MBR
	children []*node
	leafIdx  []int // leaf: indices into Trie.Trajs; nil for internal nodes
}

func (n *node) isLeaf() bool { return n.leafIdx != nil }

// Trie is the immutable local index of one partition.
type Trie struct {
	cfg Config
	// Trajs holds the partition's trajectories, aligned with the indices
	// stored in leaves (the clustered-index property).
	Trajs []*traj.T
	ip    [][]geom.Point // indexing points per trajectory
	root  *node
	nodes int
}

// Build constructs a trie over the trajectories. The slice is retained.
func Build(trajs []*traj.T, cfg Config) *Trie {
	cfg = cfg.sanitized()
	t := &Trie{cfg: cfg, Trajs: trajs, ip: make([][]geom.Point, len(trajs))}
	for i, tr := range trajs {
		t.ip[i] = pivot.IndexingPoints(tr.Points, cfg.K, cfg.Strategy)
	}
	all := make([]int, len(trajs))
	for i := range all {
		all[i] = i
	}
	t.root = t.build(all, 0)
	return t
}

// build groups the given trajectory indices by their level-th indexing
// point.
func (t *Trie) build(idxs []int, level int) *node {
	n := &node{level: level - 1, mbr: geom.EmptyMBR()}
	if len(idxs) == 0 {
		n.leafIdx = []int{}
		t.nodes++
		return n
	}
	maxLevel := t.cfg.K + 2
	if level >= maxLevel || len(idxs) <= t.cfg.MinNode {
		n.leafIdx = idxs
		t.nodes++
		return n
	}
	// Trajectories whose indexing sequence is exhausted (shorter than
	// K+2 points) become a leaf child; the rest are STR-tiled by their
	// level point.
	var exhausted, alive []int
	for _, i := range idxs {
		if level >= len(t.ip[i]) {
			exhausted = append(exhausted, i)
		} else {
			alive = append(alive, i)
		}
	}
	fanout := t.cfg.NLPivot
	if level < 2 {
		fanout = t.cfg.NLAlign
	}
	if len(exhausted) > 0 {
		leaf := &node{level: level - 1, mbr: geom.EmptyMBR(), leafIdx: exhausted}
		// The exhausted leaf inherits the parent's level semantics but has
		// no level point; its empty MBR is never distance-tested (see
		// search), so it participates as an always-candidate bucket.
		n.children = append(n.children, leaf)
		t.nodes++
	}
	if len(alive) > 0 {
		keys := make([]geom.Point, len(alive))
		for j, i := range alive {
			keys[j] = t.ip[i][level]
		}
		tiles := str.Tile(keys, fanout)
		for _, tile := range tiles {
			group := make([]int, len(tile))
			m := geom.EmptyMBR()
			for j, k := range tile {
				group[j] = alive[k]
				m = m.Extend(keys[k])
			}
			child := t.build(group, level+1)
			child.level = level
			child.mbr = m
			n.children = append(n.children, child)
		}
	}
	t.nodes++
	return n
}

// NodeCount returns the number of trie nodes (Appendix B sizing).
func (t *Trie) NodeCount() int { return t.nodes }

// LeafIndexes returns every trajectory index referenced by a leaf, in
// preorder. Exposed for integrity checks on deserialized tries: each
// index must address the trajectory slice the trie was decoded against.
func (t *Trie) LeafIndexes() []int {
	var out []int
	var walk func(*node)
	walk = func(n *node) {
		out = append(out, n.leafIdx...)
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// SizeBytes estimates the index footprint excluding trajectory data: per
// node an MBR (32 bytes) plus slice headers, plus leaf index entries.
func (t *Trie) SizeBytes() int {
	total := 0
	var walk func(*node)
	walk = func(n *node) {
		total += 64
		total += 8 * len(n.leafIdx)
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return total
}

// Stats reports search-cost counters for one query (Appendix C compares
// candidate counts across indexes).
type Stats struct {
	// NodesVisited counts trie nodes whose MBR was distance-tested.
	NodesVisited int
	// Pruned counts subtrees cut because their level lower bound exceeded
	// the remaining threshold budget — the trie's direct pruning power
	// (NodesVisited = Pruned + descended).
	Pruned int
	// Candidates counts trajectories surviving the filter.
	Candidates int
}

// Search returns the indices (into Trajs) of candidate trajectories for
// query q under the measure with threshold tau — a superset of the true
// result set, to be verified by the caller. stats may be nil.
func (t *Trie) Search(q []geom.Point, m measure.Measure, tau float64, stats *Stats) []int {
	out, _ := t.SearchContext(context.Background(), q, m, tau, stats)
	return out
}

// SearchContext is Search with cooperative cancellation: the trie descent
// checks the context every ctxCheckEvery node visits and aborts with
// ctx.Err(), so a runaway query (huge τ over a deep trie) cannot pin a
// worker past its deadline. The partial candidate list accumulated before
// the abort is discarded.
func (t *Trie) SearchContext(ctx context.Context, q []geom.Point, m measure.Measure, tau float64, stats *Stats) ([]int, error) {
	if len(q) == 0 || t.root == nil {
		return nil, ctx.Err()
	}
	s := newSearcher(ctx, t, q, m, tau, stats)
	var out []int
	out = s.descend(t.root, tau, 0, 0, out)
	if s.err != nil {
		return nil, s.err
	}
	if stats != nil {
		stats.Candidates = len(out)
	}
	return out, nil
}

// Cand is one candidate of a bound-aware trie search: a trajectory index
// plus the accumulated per-level lower bound of the path that emitted it
// (a sound lower bound on the true distance under the trie's level
// semantics — summed for DTW/ERP, maxed for Fréchet, an edit count for
// EDR/LCSS; 0 when the trajectory sat in an exhausted always-candidate
// bucket at the root).
type Cand struct {
	Idx int
	LB  float64
}

// SearchBoundsContext is SearchContext returning each candidate with the
// lower bound its trie path accumulated, so a best-first caller can
// verify candidates in bound order and stop at the first bound exceeding
// its live threshold. tau may be +Inf (no pruning: every trajectory is a
// candidate at its path bound) — the descent is pure float comparison and
// handles an infinite budget exactly.
func (t *Trie) SearchBoundsContext(ctx context.Context, q []geom.Point, m measure.Measure, tau float64, stats *Stats) ([]Cand, error) {
	if len(q) == 0 || t.root == nil {
		return nil, ctx.Err()
	}
	s := newSearcher(ctx, t, q, m, tau, stats)
	s.bounds = true
	s.descend(t.root, tau, 0, 0, nil)
	if s.err != nil {
		return nil, s.err
	}
	if stats != nil {
		stats.Candidates = len(s.bcands)
	}
	return s.bcands, nil
}

func newSearcher(ctx context.Context, t *Trie, q []geom.Point, m measure.Measure, tau float64, stats *Stats) *searcher {
	s := &searcher{t: t, q: q, m: m, tau: tau, stats: stats, ctx: ctx}
	s.gapPt, s.hasGap = m.GapPoint()
	s.anchored = m.AlignsEndpoints()
	s.accum = m.Accumulation()
	s.eps = m.Epsilon()
	return s
}

// ctxCheckEvery is the node-visit stride between context checks during
// descent: frequent enough that cancellation lands within microseconds,
// sparse enough that the atomic load cost is invisible.
const ctxCheckEvery = 64

type searcher struct {
	t        *Trie
	q        []geom.Point
	m        measure.Measure
	tau      float64
	stats    *Stats
	anchored bool
	accum    measure.Accumulation
	eps      float64
	gapPt    geom.Point
	hasGap   bool

	ctx    context.Context
	visits int
	err    error

	// bounds mode: emit (index, accumulated lower bound) pairs instead of
	// bare indices. acc threads the path's level-bound accumulation down
	// the descent (sum / max / edit count, mirroring how rem is consumed).
	bounds bool
	bcands []Cand
}

// emit records the candidates of one leaf at the given path lower bound.
func (s *searcher) emit(idxs []int, lb float64, out []int) []int {
	if s.bounds {
		for _, i := range idxs {
			s.bcands = append(s.bcands, Cand{Idx: i, LB: lb})
		}
		return out
	}
	return append(out, idxs...)
}

// descend visits n's children; rem is the remaining threshold budget (for
// AccumSum), the full tau (AccumMax), or the remaining edit budget
// (AccumEdit). suf is the query suffix start for the Lemma 5.1
// optimization. acc is the lower bound accumulated along the path so far
// (only consumed in bounds mode).
func (s *searcher) descend(n *node, rem float64, suf int, acc float64, out []int) []int {
	if s.err != nil {
		return out
	}
	if s.visits++; s.visits%ctxCheckEvery == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return out
		}
	}
	if n.isLeaf() {
		return s.emit(n.leafIdx, acc, out)
	}
	for _, c := range n.children {
		if s.err != nil {
			return out
		}
		if c.isLeaf() && c.mbr.IsEmpty() {
			// Exhausted bucket: no level point to test; all members stay
			// candidates at the bound accumulated so far.
			out = s.emit(c.leafIdx, acc, out)
			continue
		}
		if s.stats != nil {
			s.stats.NodesVisited++
		}
		out = s.visitChild(c, rem, suf, acc, out)
	}
	return out
}

// visitChild applies the level-appropriate lower bound to child c and
// recurses when it survives.
func (s *searcher) visitChild(c *node, rem float64, suf int, acc float64, out []int) []int {
	q := s.q
	switch s.accum {
	case measure.AccumSum:
		var d float64
		nsuf := suf
		if s.anchored && c.level == 0 {
			d = c.mbr.MinDist(q[0])
		} else if s.anchored && c.level == 1 {
			d = c.mbr.MinDist(q[len(q)-1])
		} else {
			d, nsuf = s.pivotMinDist(c.mbr, rem, suf)
		}
		if d > rem {
			if s.stats != nil {
				s.stats.Pruned++
			}
			return out
		}
		return s.descend(c, rem-d, nsuf, acc+d, out)

	case measure.AccumMax:
		var d float64
		nsuf := suf
		if s.anchored && c.level == 0 {
			d = c.mbr.MinDist(q[0])
		} else if s.anchored && c.level == 1 {
			d = c.mbr.MinDist(q[len(q)-1])
		} else {
			d, nsuf = s.pivotMinDist(c.mbr, rem, suf)
		}
		if d > s.tau {
			if s.stats != nil {
				s.stats.Pruned++
			}
			return out
		}
		// Max semantics: the budget is not consumed (Appendix A).
		return s.descend(c, rem, nsuf, math.Max(acc, d), out)

	default: // AccumEdit
		// Every level (endpoints included — they may be edited away) is
		// matched against the whole query; a level farther than ε from
		// every query point costs one edit.
		d, _ := s.pivotMinDist(c.mbr, math.Inf(1), 0)
		nrem := rem
		nacc := acc
		if d > s.eps {
			nrem = rem - 1
			nacc = acc + 1
			if nrem < 0 {
				if s.stats != nil {
					s.stats.Pruned++
				}
				return out
			}
		}
		return s.descend(c, nrem, 0, nacc, out)
	}
}

// pivotMinDist returns the minimum distance from the query suffix q[suf:]
// to the MBR, honoring the measure's gap point, plus the advanced suffix
// start per Lemma 5.1 (only advanced for endpoint-anchored measures; the
// ordering argument needs anchored, monotone alignments).
func (s *searcher) pivotMinDist(m geom.MBR, rem float64, suf int) (float64, int) {
	q := s.q
	best := math.Inf(1)
	nsuf := suf
	advancing := s.anchored
	for i := suf; i < len(q); i++ {
		d := m.MinDist(q[i])
		if advancing && d > rem {
			if i == nsuf {
				// Still in the prefix of points that cannot align with
				// this or any later pivot: drop them permanently.
				nsuf = i + 1
			}
			continue
		}
		advancing = false
		if d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	if s.hasGap {
		if d := m.MinDist(s.gapPt); d < best {
			best = d
		}
	}
	return best, nsuf
}

// Candidates returns every trajectory index (an unfiltered scan), used by
// tests as the trivial baseline.
func (t *Trie) Candidates() []int {
	out := make([]int, len(t.Trajs))
	for i := range out {
		out[i] = i
	}
	return out
}

// Depth returns the maximum node depth (root = 0).
func (t *Trie) Depth() int {
	var walk func(*node) int
	walk = func(n *node) int {
		d := 0
		for _, c := range n.children {
			if cd := walk(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	if t.root == nil {
		return 0
	}
	return walk(t.root)
}
