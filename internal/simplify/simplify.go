// Package simplify provides trajectory preprocessing utilities: error-
// bounded polyline simplification (Douglas–Peucker) and uniform
// resampling. The paper's related-work section surveys trajectory
// simplification [28–30] as standard preprocessing for large-scale
// analytics; downstream users typically simplify raw GPS traces before
// indexing to cut point counts without moving any point more than a bound
// ε — which also bounds the induced error of the trajectory distances
// DITA computes.
package simplify

import (
	"math"

	"dita/internal/geom"
	"dita/internal/traj"
)

// DouglasPeucker returns a subsequence of pts containing the first and
// last point such that every dropped point lies within eps of the
// simplified polyline. The classic divide-and-conquer: keep the point
// farthest from the chord if it exceeds eps, recurse on both halves.
func DouglasPeucker(pts []geom.Point, eps float64) []geom.Point {
	if len(pts) <= 2 || eps <= 0 {
		out := make([]geom.Point, len(pts))
		copy(out, pts)
		return out
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	dpRecurse(pts, 0, len(pts)-1, eps, keep)
	var out []geom.Point
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

func dpRecurse(pts []geom.Point, lo, hi int, eps float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxD, maxI := 0.0, -1
	for i := lo + 1; i < hi; i++ {
		if d := segDist(pts[i], pts[lo], pts[hi]); d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD > eps {
		keep[maxI] = true
		dpRecurse(pts, lo, maxI, eps, keep)
		dpRecurse(pts, maxI, hi, eps, keep)
	}
}

// segDist returns the distance from p to the segment a-b.
func segDist(p, a, b geom.Point) float64 {
	ab := b.Sub(a)
	denom := ab.X*ab.X + ab.Y*ab.Y
	if denom == 0 {
		return p.Dist(a)
	}
	t := ((p.X-a.X)*ab.X + (p.Y-a.Y)*ab.Y) / denom
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := geom.Point{X: a.X + t*ab.X, Y: a.Y + t*ab.Y}
	return p.Dist(proj)
}

// Resample returns n points evenly spaced by arc length along the
// polyline, always including the original endpoints. n < 2 is clamped
// to 2. Resampling normalizes wildly different sampling rates before
// distance comparison (the inconsistent-sampling problem of [33]).
func Resample(pts []geom.Point, n int) []geom.Point {
	if len(pts) == 0 {
		return nil
	}
	if n < 2 {
		n = 2
	}
	if len(pts) == 1 {
		out := make([]geom.Point, n)
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	// Cumulative arc length.
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i-1].Dist(pts[i])
	}
	total := cum[len(pts)-1]
	out := make([]geom.Point, n)
	out[0] = pts[0]
	out[n-1] = pts[len(pts)-1]
	if total == 0 {
		for i := range out {
			out[i] = pts[0]
		}
		return out
	}
	seg := 1
	for i := 1; i < n-1; i++ {
		target := total * float64(i) / float64(n-1)
		for seg < len(pts)-1 && cum[seg] < target {
			seg++
		}
		span := cum[seg] - cum[seg-1]
		t := 0.0
		if span > 0 {
			t = (target - cum[seg-1]) / span
		}
		a, b := pts[seg-1], pts[seg]
		out[i] = geom.Point{X: a.X + t*(b.X-a.X), Y: a.Y + t*(b.Y-a.Y)}
	}
	return out
}

// Dataset simplifies every trajectory of d with DouglasPeucker, returning
// a new dataset (ids preserved). Trajectories never drop below
// traj.MinLen points.
func Dataset(d *traj.Dataset, eps float64) *traj.Dataset {
	out := make([]*traj.T, len(d.Trajs))
	for i, t := range d.Trajs {
		pts := DouglasPeucker(t.Points, eps)
		for len(pts) < traj.MinLen {
			pts = append(pts, pts[len(pts)-1])
		}
		out[i] = &traj.T{ID: t.ID, Points: pts}
	}
	return traj.NewDataset(d.Name+"(simplified)", out)
}

// MaxError returns the maximum distance from any original point to the
// simplified polyline — the realized simplification error.
func MaxError(orig, simplified []geom.Point) float64 {
	if len(simplified) < 2 {
		if len(simplified) == 1 {
			worst := 0.0
			for _, p := range orig {
				if d := p.Dist(simplified[0]); d > worst {
					worst = d
				}
			}
			return worst
		}
		return math.Inf(1)
	}
	worst := 0.0
	for _, p := range orig {
		best := math.Inf(1)
		for i := 1; i < len(simplified); i++ {
			if d := segDist(p, simplified[i-1], simplified[i]); d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}
