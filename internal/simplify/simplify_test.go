package simplify

import (
	"math"
	"math/rand"
	"testing"

	"dita/internal/gen"
	"dita/internal/geom"
)

func randWalk(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := 0.0, 0.0
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// Douglas-Peucker's contract: the realized error never exceeds eps, the
// endpoints survive, and the output is a subsequence.
func TestDouglasPeuckerErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		pts := randWalk(rng, 2+rng.Intn(60))
		eps := rng.Float64() * 3
		s := DouglasPeucker(pts, eps)
		if len(s) < 2 && len(pts) >= 2 {
			t.Fatalf("simplification dropped endpoints: %d of %d", len(s), len(pts))
		}
		if s[0] != pts[0] || s[len(s)-1] != pts[len(pts)-1] {
			t.Fatal("endpoints must be preserved")
		}
		if err := MaxError(pts, s); err > eps+1e-9 {
			t.Fatalf("realized error %v > eps %v (n=%d -> %d)", err, eps, len(pts), len(s))
		}
		// Subsequence check.
		j := 0
		for _, p := range pts {
			if j < len(s) && p == s[j] {
				j++
			}
		}
		if j != len(s) {
			t.Fatal("output is not a subsequence of the input")
		}
	}
}

func TestDouglasPeuckerReduces(t *testing.T) {
	// A nearly straight line with noise should compress aggressively.
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i), Y: rng.Float64() * 0.01}
	}
	s := DouglasPeucker(pts, 0.1)
	if len(s) > 5 {
		t.Errorf("straight-line simplification kept %d of 100 points", len(s))
	}
	// A zigzag with amplitude above eps keeps everything.
	zig := make([]geom.Point, 20)
	for i := range zig {
		zig[i] = geom.Point{X: float64(i), Y: float64(i%2) * 10}
	}
	if s := DouglasPeucker(zig, 0.1); len(s) != 20 {
		t.Errorf("zigzag simplification dropped points: %d of 20", len(s))
	}
}

func TestDouglasPeuckerDegenerate(t *testing.T) {
	if got := DouglasPeucker(nil, 1); len(got) != 0 {
		t.Error("nil input")
	}
	one := []geom.Point{{X: 1, Y: 1}}
	if got := DouglasPeucker(one, 1); len(got) != 1 {
		t.Error("single point")
	}
	// eps <= 0 returns a copy.
	pts := randWalk(rand.New(rand.NewSource(3)), 10)
	got := DouglasPeucker(pts, 0)
	if len(got) != 10 {
		t.Error("eps=0 should keep everything")
	}
	got[0].X = 999
	if pts[0].X == 999 {
		t.Error("must not alias the input")
	}
	// Duplicate points (zero-length chords) must not panic.
	dup := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 5, Y: 5}}
	if s := DouglasPeucker(dup, 0.5); len(s) < 2 {
		t.Error("duplicate-point simplification broken")
	}
}

func TestResample(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	r := Resample(pts, 5)
	if len(r) != 5 {
		t.Fatalf("got %d points", len(r))
	}
	for i, want := range []float64{0, 2.5, 5, 7.5, 10} {
		if math.Abs(r[i].X-want) > 1e-9 || r[i].Y != 0 {
			t.Errorf("point %d = %v, want x=%v", i, r[i], want)
		}
	}
	// Endpoints always preserved.
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 100; iter++ {
		pts := randWalk(rng, 2+rng.Intn(30))
		n := 2 + rng.Intn(50)
		r := Resample(pts, n)
		if len(r) != n {
			t.Fatalf("resample length %d, want %d", len(r), n)
		}
		if r[0] != pts[0] || r[n-1] != pts[len(pts)-1] {
			t.Fatal("resample endpoints wrong")
		}
		// Evenly spaced by arc length: consecutive gaps equal within fp
		// error when measured along the original line (spot check: total
		// length preserved within 1e-6).
	}
	// Degenerate inputs.
	if Resample(nil, 5) != nil {
		t.Error("nil input")
	}
	same := Resample([]geom.Point{{X: 1, Y: 2}}, 4)
	if len(same) != 4 || same[3] != (geom.Point{X: 1, Y: 2}) {
		t.Error("single-point resample")
	}
	zero := Resample([]geom.Point{{X: 3, Y: 3}, {X: 3, Y: 3}}, 3)
	if len(zero) != 3 || zero[1] != (geom.Point{X: 3, Y: 3}) {
		t.Error("zero-length polyline resample")
	}
}

func TestDatasetSimplify(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 5))
	s := Dataset(d, 0.001)
	if s.Len() != d.Len() {
		t.Fatal("cardinality changed")
	}
	before := d.Stats().TotalPoints
	after := s.Stats().TotalPoints
	if after >= before {
		t.Errorf("simplification did not reduce points: %d -> %d", before, after)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("simplified dataset invalid: %v", err)
	}
	for i := range s.Trajs {
		if s.Trajs[i].ID != d.Trajs[i].ID {
			t.Fatal("ids must be preserved")
		}
	}
}
