// Package snap implements crash-safe partition snapshots: a versioned,
// checksummed binary image of one partition's trajectories, trie index and
// build options, durable enough that a worker can cold-start from disk
// instead of being re-shipped raw payloads and re-indexing.
//
// Design rules (DESIGN.md §10):
//
//   - The format is canonical: the same partition content always encodes
//     to the same bytes, so fingerprints identify content and byte
//     comparison is a valid equality test for indexes.
//   - Corruption is detected, never deserialized: every section carries a
//     CRC-32C, and a sealed footer carries a whole-body CRC-32C plus the
//     body length. A torn write has no valid footer; a flipped bit fails
//     a checksum; a future format version is refused before any payload
//     is parsed.
//   - Writes are crash-safe: Store.Save encodes to a temp file, fsyncs,
//     atomically renames into place, and fsyncs the directory. A crash at
//     any instant leaves either the old snapshot, the new one, or an
//     ignorable *.tmp — never a half-visible file at the final path.
//
// Decode failures are classified (Classify) so callers can report and
// count them ("corrupt" / "version" / "io") and fall back to rebuilding
// from the raw payload.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"dita/internal/geom"
	"dita/internal/traj"
	"dita/internal/trie"
)

// Version is the current snapshot format version. Bump it on any layout
// change; decoders refuse other versions (the caller rebuilds). The layout
// is versioned precisely so a compact (succinct-trie) index encoding can
// land behind the same file format later.
const Version = 1

const (
	magic     = "DITASNP1" // header magic, 8 bytes
	sealMagic = "DITASEAL" // footer magic, 8 bytes

	headerLen = 8 + 4 + 4     // magic, version, section count
	footerLen = 8 + 4 + 4 + 8 // seal magic, version, body CRC, body length
)

// Section kinds. Decoders skip unknown kinds (their CRC is still
// verified), so additive sections are backward-compatible within a
// version.
const (
	kindMeta  uint32 = 1
	kindTrajs uint32 = 2
	kindTrie  uint32 = 3
	// kindWatermark carries the WAL truncation watermark (u64): every
	// logged mutation with sequence number <= the watermark is already
	// folded into this snapshot's trajectories, so recovery replays only
	// the WAL suffix past it. Additive and optional: snapshots from
	// before streaming ingest simply have watermark 0.
	kindWatermark uint32 = 4
)

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// BuildOptions records everything needed to rebuild a partition's index
// from its trajectories — and therefore everything that must match for a
// snapshot to substitute for a fresh build.
type BuildOptions struct {
	// Measure is the similarity function name plus the parameters the
	// edit-based measures need (measure.ByName inputs).
	Measure string
	Eps     float64
	Delta   int
	// Trie configuration (trie.Config with Strategy as an int).
	K, NLAlign, NLPivot, MinNode, Strategy int
	// CellD is the verification cell side length.
	CellD float64
}

// Snapshot is the in-memory form of one partition snapshot.
type Snapshot struct {
	// Dataset and Partition identify the partition within a deployment.
	Dataset   string
	Partition int
	// Fingerprint is the content hash over (Opts, Trajs) — filled by
	// Encode, verified by Decode. Two snapshots with equal fingerprints
	// index the same data the same way.
	Fingerprint uint64
	Opts        BuildOptions
	Trajs       []*traj.T
	// Index is the partition's trie, sharing the Trajs slice.
	Index *trie.Trie
	// Watermark is the highest WAL sequence number folded into Trajs
	// (0 = none): recovery loads the snapshot, then replays only WAL
	// records with Seq > Watermark. Not part of the content fingerprint —
	// the same logical content reached via different merge schedules must
	// still fingerprint-match for dispatch reuse.
	Watermark uint64
}

// CorruptError reports a snapshot that failed structural or checksum
// validation. It is detection, not diagnosis: the caller's only safe move
// is to discard the file and rebuild.
type CorruptError struct {
	Reason string
}

func (e *CorruptError) Error() string { return "snap: corrupt snapshot: " + e.Reason }

// VersionError reports a snapshot written by a different format version.
type VersionError struct {
	Got uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("snap: unsupported snapshot version %d (supported: %d)", e.Got, Version)
}

// IsCorrupt reports whether err marks a corrupt (torn, bit-rotted, or
// structurally invalid) snapshot.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// Classify maps a Load/Decode error to the coarse class the skip reports
// and obs counters use: "corrupt" (checksum/structure), "version"
// (format mismatch), "io" (filesystem), or "" for nil.
func Classify(err error) string {
	switch {
	case err == nil:
		return ""
	case IsCorrupt(err):
		return "corrupt"
	case func() bool { var ve *VersionError; return errors.As(err, &ve) }():
		return "version"
	default:
		return "io"
	}
}

func corruptf(format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...)}
}

// appendU32 / appendU64 / appendF64 / appendStr are the little-endian
// primitives shared by every section encoder.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// reader is a strict bounds-checked cursor; the first overrun poisons it.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = corruptf("section truncated at offset %d", r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > len(r.data)-r.off) {
		r.err = corruptf("string length %d exceeds buffer", n)
		return ""
	}
	return string(r.take(n))
}

// encodeMeta builds the kindMeta payload.
func encodeMeta(s *Snapshot, fp uint64) []byte {
	b := appendStr(nil, s.Dataset)
	b = appendU64(b, uint64(int64(s.Partition)))
	b = appendU64(b, fp)
	b = appendStr(b, s.Opts.Measure)
	b = appendF64(b, s.Opts.Eps)
	b = appendU64(b, uint64(int64(s.Opts.Delta)))
	b = appendU32(b, uint32(int32(s.Opts.K)))
	b = appendU32(b, uint32(int32(s.Opts.NLAlign)))
	b = appendU32(b, uint32(int32(s.Opts.NLPivot)))
	b = appendU32(b, uint32(int32(s.Opts.MinNode)))
	b = appendU32(b, uint32(int32(s.Opts.Strategy)))
	b = appendF64(b, s.Opts.CellD)
	b = appendU64(b, uint64(len(s.Trajs)))
	return b
}

func decodeMeta(data []byte, s *Snapshot) (trajCount int, err error) {
	r := &reader{data: data}
	s.Dataset = r.str()
	s.Partition = int(int64(r.u64()))
	s.Fingerprint = r.u64()
	s.Opts.Measure = r.str()
	s.Opts.Eps = r.f64()
	s.Opts.Delta = int(int64(r.u64()))
	s.Opts.K = int(int32(r.u32()))
	s.Opts.NLAlign = int(int32(r.u32()))
	s.Opts.NLPivot = int(int32(r.u32()))
	s.Opts.MinNode = int(int32(r.u32()))
	s.Opts.Strategy = int(int32(r.u32()))
	s.Opts.CellD = r.f64()
	trajCount = int(r.u64())
	if r.err != nil {
		return 0, r.err
	}
	if r.off != len(data) {
		return 0, corruptf("meta section: %d trailing bytes", len(data)-r.off)
	}
	return trajCount, nil
}

// encodeTrajs builds the kindTrajs payload.
func encodeTrajs(trajs []*traj.T) []byte {
	n := 8
	for _, t := range trajs {
		n += 8 + 8 + 16*len(t.Points)
	}
	b := make([]byte, 0, n)
	b = appendU64(b, uint64(len(trajs)))
	for _, t := range trajs {
		b = appendU64(b, uint64(int64(t.ID)))
		b = appendU64(b, uint64(len(t.Points)))
		for _, p := range t.Points {
			b = appendF64(b, p.X)
			b = appendF64(b, p.Y)
		}
	}
	return b
}

func decodeTrajs(data []byte) ([]*traj.T, error) {
	r := &reader{data: data}
	n := int(r.u64())
	if r.err != nil {
		return nil, r.err
	}
	// Each trajectory costs at least 16 bytes of headers.
	if n < 0 || n > (len(data)-r.off)/16 {
		return nil, corruptf("trajectory count %d exceeds buffer", n)
	}
	out := make([]*traj.T, n)
	for i := range out {
		id := int(int64(r.u64()))
		np := int(r.u64())
		if r.err != nil {
			return nil, r.err
		}
		if np < 0 || np > (len(data)-r.off)/16 {
			return nil, corruptf("point count %d exceeds buffer", np)
		}
		pts := make([]geom.Point, np)
		for j := range pts {
			pts[j] = geom.Point{X: r.f64(), Y: r.f64()}
		}
		out[i] = &traj.T{ID: id, Points: pts}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, corruptf("trajectory section: %d trailing bytes", len(data)-r.off)
	}
	return out, nil
}

// Fingerprint hashes the partition content — build options plus every
// trajectory — with FNV-1a 64. Equal fingerprints mean "a snapshot or an
// in-memory index built from this exact data with these exact options is
// interchangeable", which is what lets the coordinator skip re-shipping a
// partition a worker already holds.
func Fingerprint(opts BuildOptions, trajs []*traj.T) uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	h.Write([]byte(opts.Measure))
	f64(opts.Eps)
	u64(uint64(int64(opts.Delta)))
	u64(uint64(int64(opts.K)))
	u64(uint64(int64(opts.NLAlign)))
	u64(uint64(int64(opts.NLPivot)))
	u64(uint64(int64(opts.MinNode)))
	u64(uint64(int64(opts.Strategy)))
	f64(opts.CellD)
	u64(uint64(len(trajs)))
	for _, t := range trajs {
		u64(uint64(int64(t.ID)))
		u64(uint64(len(t.Points)))
		for _, p := range t.Points {
			f64(p.X)
			f64(p.Y)
		}
	}
	return h.Sum64()
}

// appendSection appends one framed section: kind, length, payload, CRC.
func appendSection(b []byte, kind uint32, payload []byte) []byte {
	b = appendU32(b, kind)
	b = appendU64(b, uint64(len(payload)))
	b = append(b, payload...)
	return appendU32(b, crc32.Checksum(payload, castagnoli))
}

// Encode serializes the snapshot to its canonical byte image, computing
// and embedding the content fingerprint (s.Fingerprint is updated).
// The caller is responsible for s being structurally sound: Index non-nil
// and built over exactly s.Trajs.
func Encode(s *Snapshot) []byte {
	fp := Fingerprint(s.Opts, s.Trajs)
	s.Fingerprint = fp
	nSections := uint32(3)
	if s.Watermark > 0 {
		nSections = 4
	}
	body := make([]byte, 0, 1024)
	body = append(body, magic...)
	body = appendU32(body, Version)
	body = appendU32(body, nSections)
	body = appendSection(body, kindMeta, encodeMeta(s, fp))
	body = appendSection(body, kindTrajs, encodeTrajs(s.Trajs))
	body = appendSection(body, kindTrie, s.Index.AppendBinary(nil))
	if s.Watermark > 0 {
		// Emitted only when set so pre-ingest snapshot images stay
		// byte-identical to what earlier builds wrote.
		body = appendSection(body, kindWatermark, appendU64(nil, s.Watermark))
	}

	out := body
	out = append(out, sealMagic...)
	out = appendU32(out, Version)
	out = appendU32(out, crc32.Checksum(body, castagnoli))
	out = appendU64(out, uint64(len(body)))
	return out
}

// Decode parses and fully verifies a snapshot image: footer seal, version,
// whole-body checksum, per-section checksums, strict structural decoding,
// and a recomputed content fingerprint. Any failure returns a classified
// error (CorruptError / VersionError) and never a partially-built
// snapshot; Decode never panics on arbitrary input.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < headerLen+footerLen {
		return nil, corruptf("file too short (%d bytes)", len(data))
	}
	foot := data[len(data)-footerLen:]
	if string(foot[:8]) != sealMagic {
		// No seal: the write never completed (torn write / crash mid-write).
		return nil, corruptf("missing seal footer (torn write)")
	}
	footVersion := binary.LittleEndian.Uint32(foot[8:12])
	bodyCRC := binary.LittleEndian.Uint32(foot[12:16])
	bodyLen := binary.LittleEndian.Uint64(foot[16:24])
	if footVersion != Version {
		return nil, &VersionError{Got: footVersion}
	}
	body := data[:len(data)-footerLen]
	if bodyLen != uint64(len(body)) {
		return nil, corruptf("footer body length %d != actual %d", bodyLen, len(body))
	}
	if crc := crc32.Checksum(body, castagnoli); crc != bodyCRC {
		return nil, corruptf("body checksum mismatch (want %08x, got %08x)", bodyCRC, crc)
	}
	if string(body[:8]) != magic {
		return nil, corruptf("bad header magic")
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != Version {
		return nil, &VersionError{Got: v}
	}
	nSections := int(binary.LittleEndian.Uint32(body[12:16]))

	s := &Snapshot{}
	var (
		metaSeen, trajsSeen, trieSeen bool
		trajCount                     int
		triePayload                   []byte
	)
	r := &reader{data: body, off: headerLen}
	for i := 0; i < nSections; i++ {
		kind := r.u32()
		plen := int(r.u64())
		if r.err == nil && (plen < 0 || plen > len(body)-r.off-4) {
			return nil, corruptf("section %d length %d exceeds buffer", i, plen)
		}
		payload := r.take(plen)
		crc := r.u32()
		if r.err != nil {
			return nil, r.err
		}
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return nil, corruptf("section %d (kind %d) checksum mismatch", i, kind)
		}
		switch kind {
		case kindMeta:
			if metaSeen {
				return nil, corruptf("duplicate meta section")
			}
			metaSeen = true
			var err error
			if trajCount, err = decodeMeta(payload, s); err != nil {
				return nil, err
			}
		case kindTrajs:
			if trajsSeen {
				return nil, corruptf("duplicate trajectory section")
			}
			trajsSeen = true
			var err error
			if s.Trajs, err = decodeTrajs(payload); err != nil {
				return nil, err
			}
		case kindTrie:
			if trieSeen {
				return nil, corruptf("duplicate trie section")
			}
			trieSeen = true
			triePayload = payload
		case kindWatermark:
			if s.Watermark != 0 {
				return nil, corruptf("duplicate watermark section")
			}
			if len(payload) != 8 {
				return nil, corruptf("watermark section is %d bytes, want 8", len(payload))
			}
			s.Watermark = binary.LittleEndian.Uint64(payload)
			if s.Watermark == 0 {
				return nil, corruptf("watermark section holds zero")
			}
		default:
			// Unknown additive section: checksum verified above, content
			// ignored by this decoder.
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(body) {
		return nil, corruptf("%d trailing bytes after sections", len(body)-r.off)
	}
	if !metaSeen || !trajsSeen || !trieSeen {
		return nil, corruptf("missing required section (meta=%t trajs=%t trie=%t)",
			metaSeen, trajsSeen, trieSeen)
	}
	if trajCount != len(s.Trajs) {
		return nil, corruptf("meta declares %d trajectories, section holds %d", trajCount, len(s.Trajs))
	}
	index, err := trie.DecodeBinary(triePayload, s.Trajs)
	if err != nil {
		return nil, &CorruptError{Reason: err.Error()}
	}
	s.Index = index
	// Recomputed fingerprint must match the sealed one: catches any
	// logical drift between encoder and decoder that the CRCs cannot.
	if fp := Fingerprint(s.Opts, s.Trajs); fp != s.Fingerprint {
		return nil, corruptf("content fingerprint mismatch (sealed %016x, recomputed %016x)",
			s.Fingerprint, fp)
	}
	return s, nil
}
