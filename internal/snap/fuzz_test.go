package snap

import (
	"bytes"
	"testing"
)

// FuzzSnapshot drives Decode with arbitrary bytes: it must never panic,
// and anything it accepts must be internally consistent — the sealed
// fingerprint matches a recompute over the decoded content, the trie's
// leaf references stay in range, and re-encoding is a fixed point
// (Encode(Decode(x)) decodes to the same canonical bytes). Run the seed
// corpus with plain `go test`, or fuzz with `go test -fuzz=FuzzSnapshot`.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DITASNP1"))
	f.Add([]byte("DITASEAL"))
	for _, n := range []int{1, 8, 40} {
		valid := Encode(testSnapshot(f, n, int64(n)))
		f.Add(valid)
		f.Add(valid[:len(valid)/2])          // torn
		f.Add(append(valid, valid...))       // trailing garbage
		mut := append([]byte(nil), valid...) // single bit of rot
		mut[len(mut)/3] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // bound per-input work; the format has no length-dependent logic beyond this
		}
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		if s.Fingerprint != Fingerprint(s.Opts, s.Trajs) {
			t.Fatalf("accepted snapshot's sealed fingerprint %016x does not match recompute", s.Fingerprint)
		}
		if s.Index == nil {
			t.Fatal("accepted snapshot without an index")
		}
		for _, idx := range s.Index.LeafIndexes() {
			if idx < 0 || idx >= len(s.Trajs) {
				t.Fatalf("accepted snapshot with out-of-range leaf index %d (%d trajs)", idx, len(s.Trajs))
			}
		}
		// Canonical fixed point: re-encoding the decoded snapshot must
		// produce bytes that decode to the same canonical form. (The raw
		// input may differ from the re-encoding only by sections Decode
		// skips; the canonical form itself must be stable.)
		enc := Encode(s)
		s2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot does not decode: %v", err)
		}
		if !bytes.Equal(Encode(s2), enc) {
			t.Fatal("canonical encoding is not a fixed point")
		}
		if s2.Fingerprint != s.Fingerprint {
			t.Fatalf("fingerprint drifted across re-encode: %016x -> %016x", s.Fingerprint, s2.Fingerprint)
		}
	})
}
