package snap

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// suffix is the snapshot filename extension; tmpSuffix marks in-progress
// writes, which readers ignore and Scan cleans up (a crash mid-write
// leaves exactly one).
const (
	suffix    = ".snap"
	tmpSuffix = ".snap.tmp"
)

// Store manages the snapshot files of one directory: crash-safe saves,
// verified loads, and the cold-start scan.
type Store struct {
	dir string
	// Faults, when non-nil, injects seeded write failures (torn writes,
	// bit flips, mid-write crashes) — the chaos harness for snapshot I/O.
	// Never set it in production.
	Faults *FaultPlan
}

// NewStore opens (creating if needed) a snapshot directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("snap: empty snapshot directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Filename returns the file name (not path) a partition snapshot uses.
// The dataset name is path-escaped so arbitrary dataset strings cannot
// traverse or collide; the partition id terminates the name, after the
// last "-p", so escaped dashes in dataset names stay unambiguous.
func Filename(dataset string, partition int) string {
	return url.PathEscape(dataset) + "-p" + strconv.Itoa(partition) + suffix
}

// ParseFilename inverts Filename. ok is false for names this store did
// not produce (including temp files).
func ParseFilename(name string) (dataset string, partition int, ok bool) {
	if strings.HasSuffix(name, tmpSuffix) || !strings.HasSuffix(name, suffix) {
		return "", 0, false
	}
	stem := strings.TrimSuffix(name, suffix)
	i := strings.LastIndex(stem, "-p")
	if i < 0 {
		return "", 0, false
	}
	pid, err := strconv.Atoi(stem[i+2:])
	if err != nil || pid < 0 {
		return "", 0, false
	}
	ds, err := url.PathUnescape(stem[:i])
	if err != nil {
		return "", 0, false
	}
	return ds, pid, true
}

// Path returns the full path of a partition's snapshot file.
func (st *Store) Path(dataset string, partition int) string {
	return filepath.Join(st.dir, Filename(dataset, partition))
}

// Save encodes the snapshot and writes it crash-safely: temp file →
// fsync → atomic rename → directory fsync. On success the returned size
// is the snapshot's byte length and the file at Path is complete and
// sealed; on error the final path is untouched (still holding any
// previous snapshot). A fault plan may corrupt or abort the write — that
// is the point of it.
func (st *Store) Save(s *Snapshot) (int64, error) {
	data := Encode(s)
	size := int64(len(data))
	final := st.Path(s.Dataset, s.Partition)
	tmp := final + ".tmp"

	write := data
	crashAfter := -1
	if st.Faults != nil {
		var err error
		write, crashAfter, err = st.Faults.apply(data)
		if err != nil {
			return 0, err
		}
	}

	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("snap: %w", err)
	}
	if crashAfter >= 0 {
		// Injected mid-write crash: a prefix lands in the temp file and
		// the writer "dies" — no fsync, no rename. The final path is
		// untouched; Scan later removes the orphan.
		if crashAfter > len(write) {
			crashAfter = len(write)
		}
		f.Write(write[:crashAfter])
		f.Close()
		return 0, &InjectedFault{Kind: "crash"}
	}
	if _, err := f.Write(write); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("snap: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("snap: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snap: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snap: %w", err)
	}
	st.syncDir()
	return size, nil
}

// syncDir fsyncs the directory so the rename itself is durable. Errors
// are swallowed: some filesystems refuse directory fsync, and the rename
// already happened — the snapshot is at worst one crash behind.
func (st *Store) syncDir() {
	if d, err := os.Open(st.dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Load reads and fully verifies one partition's snapshot.
func (st *Store) Load(dataset string, partition int) (*Snapshot, error) {
	return LoadFile(st.Path(dataset, partition))
}

// LoadFile reads and fully verifies a snapshot file. The error is
// classified: filesystem problems stay as-is ("io"), everything
// structural becomes CorruptError/VersionError.
func LoadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Remove deletes a partition's snapshot (and any orphaned temp file).
// Removing a snapshot that does not exist is not an error.
func (st *Store) Remove(dataset string, partition int) error {
	final := st.Path(dataset, partition)
	os.Remove(final + ".tmp")
	if err := os.Remove(final); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("snap: %w", err)
	}
	return nil
}

// Entry names one snapshot file found by Scan.
type Entry struct {
	Path      string
	Dataset   string
	Partition int
}

// Scan lists the directory's snapshot files (sorted by dataset, then
// partition) and removes orphaned temp files left by crashed writes.
// Files with foreign names are ignored, not errors: the directory may be
// shared with logs or operator notes.
func (st *Store) Scan() ([]Entry, error) {
	des, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	var out []Entry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			// A crashed write's leftover: never visible at a final path,
			// safe to clear.
			os.Remove(filepath.Join(st.dir, name))
			continue
		}
		ds, pid, ok := ParseFilename(name)
		if !ok {
			continue
		}
		out = append(out, Entry{Path: filepath.Join(st.dir, name), Dataset: ds, Partition: pid})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dataset != out[j].Dataset {
			return out[i].Dataset < out[j].Dataset
		}
		return out[i].Partition < out[j].Partition
	})
	return out, nil
}
