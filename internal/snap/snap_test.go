package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
	"dita/internal/trie"
)

// testSnapshot builds a small but structurally rich snapshot: enough
// trajectories that the trie has internal levels, pivots, and an
// exhausted bucket (short trajectories).
func testSnapshot(t testing.TB, n int, seed int64) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]*traj.T, n)
	for i := range trajs {
		np := 2 + rng.Intn(12)
		pts := make([]geom.Point, np)
		x, y := rng.Float64(), rng.Float64()
		for j := range pts {
			x += rng.NormFloat64() * 0.01
			y += rng.NormFloat64() * 0.01
			pts[j] = geom.Point{X: x, Y: y}
		}
		trajs[i] = &traj.T{ID: 1000 + i, Points: pts}
	}
	cfg := trie.Config{K: 3, NLAlign: 4, NLPivot: 3, MinNode: 4}
	return &Snapshot{
		Dataset:   "trips",
		Partition: 7,
		Opts: BuildOptions{
			Measure: "DTW",
			K:       cfg.K, NLAlign: cfg.NLAlign, NLPivot: cfg.NLPivot, MinNode: cfg.MinNode,
			CellD: 0.01,
		},
		Trajs: trajs,
		Index: trie.Build(trajs, cfg),
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := testSnapshot(t, 60, 1)
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Dataset != s.Dataset || got.Partition != s.Partition {
		t.Fatalf("identity mismatch: got %s/%d want %s/%d",
			got.Dataset, got.Partition, s.Dataset, s.Partition)
	}
	if got.Opts != s.Opts {
		t.Fatalf("options mismatch: got %+v want %+v", got.Opts, s.Opts)
	}
	if got.Fingerprint != s.Fingerprint || got.Fingerprint == 0 {
		t.Fatalf("fingerprint mismatch: got %016x want %016x", got.Fingerprint, s.Fingerprint)
	}
	if len(got.Trajs) != len(s.Trajs) {
		t.Fatalf("trajectory count: got %d want %d", len(got.Trajs), len(s.Trajs))
	}
	for i := range got.Trajs {
		if !reflect.DeepEqual(got.Trajs[i], s.Trajs[i]) {
			t.Fatalf("trajectory %d differs", i)
		}
	}
	// The decoded trie must be byte-identical to the built one — the
	// "cold start equals fresh build" property the whole feature rests on.
	if !bytes.Equal(got.Index.AppendBinary(nil), s.Index.AppendBinary(nil)) {
		t.Fatal("decoded trie encoding differs from built trie")
	}
	// And canonically: re-encoding the decoded snapshot is bit-exact.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encoded snapshot differs from original image")
	}
	// Decoded index answers queries identically.
	q := s.Trajs[0].Points
	m := measure.DTW{}
	want := s.Index.Search(q, m, 0.05, nil)
	have := got.Index.Search(q, m, 0.05, nil)
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("search candidates differ: fresh %v, decoded %v", want, have)
	}
}

func TestSnapshotWatermarkRoundTrip(t *testing.T) {
	s := testSnapshot(t, 20, 3)
	base := Encode(s)
	s.Watermark = 12345
	data := Encode(s)
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Watermark != 12345 {
		t.Fatalf("Watermark = %d, want 12345", got.Watermark)
	}
	// The watermark is outside the content fingerprint: merge schedules
	// differ across replicas but content-equal partitions must still match.
	if got.Fingerprint != s.Fingerprint {
		t.Fatal("watermark changed the content fingerprint")
	}
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("re-encoded watermarked snapshot differs")
	}
	// Watermark 0 keeps the pre-ingest image: no extra section at all.
	s.Watermark = 0
	if !bytes.Equal(Encode(s), base) {
		t.Fatal("zero watermark altered the snapshot image")
	}
	if dec, err := Decode(base); err != nil || dec.Watermark != 0 {
		t.Fatalf("pre-ingest image: watermark %d err %v", dec.Watermark, err)
	}
}

// TestSnapshotEveryBitFlipDetected flips one bit in every byte of the
// image and requires Decode to fail — no single-bit corruption anywhere
// (header, sections, footer) may decode successfully or panic.
func TestSnapshotEveryBitFlipDetected(t *testing.T) {
	s := testSnapshot(t, 20, 2)
	data := Encode(s)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 1 << uint(i%8)
		got, err := Decode(mut)
		if err == nil {
			t.Fatalf("bit flip at byte %d/%d decoded successfully", i, len(data))
		}
		if got != nil {
			t.Fatalf("bit flip at byte %d returned a snapshot alongside error %v", i, err)
		}
	}
}

// TestSnapshotEveryTruncationDetected cuts the image at every length and
// requires a classified failure — the torn-write matrix.
func TestSnapshotEveryTruncationDetected(t *testing.T) {
	s := testSnapshot(t, 12, 3)
	data := Encode(s)
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded successfully", n, len(data))
		} else if !IsCorrupt(err) {
			t.Fatalf("truncation to %d bytes: want CorruptError, got %v", n, err)
		}
	}
	// Appended garbage invalidates the seal position.
	if _, err := Decode(append(append([]byte(nil), data...), 0xAB)); err == nil {
		t.Fatal("appended byte decoded successfully")
	}
}

func TestSnapshotVersionBumpRefused(t *testing.T) {
	s := testSnapshot(t, 8, 4)
	data := Encode(s)
	// Patch the footer version (offset len-16..len-12) to a future one.
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(mut[len(mut)-16:], Version+1)
	_, err := Decode(mut)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("want VersionError, got %v", err)
	}
	if ve.Got != Version+1 {
		t.Fatalf("VersionError.Got = %d, want %d", ve.Got, Version+1)
	}
	if Classify(err) != "version" {
		t.Fatalf("Classify(version bump) = %q, want %q", Classify(err), "version")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{&CorruptError{Reason: "x"}, "corrupt"},
		{&VersionError{Got: 9}, "version"},
		{os.ErrNotExist, "io"},
		{errors.New("boom"), "io"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s := testSnapshot(t, 10, 5)
	base := Fingerprint(s.Opts, s.Trajs)
	if base != Fingerprint(s.Opts, s.Trajs) {
		t.Fatal("fingerprint unstable")
	}
	opts := s.Opts
	opts.CellD += 1e-9
	if Fingerprint(opts, s.Trajs) == base {
		t.Fatal("fingerprint ignores CellD")
	}
	mut := append([]*traj.T(nil), s.Trajs...)
	mut[3] = &traj.T{ID: mut[3].ID, Points: append([]geom.Point(nil), mut[3].Points...)}
	mut[3].Points[0].X += 1e-12
	if Fingerprint(s.Opts, mut) == base {
		t.Fatal("fingerprint ignores point perturbation")
	}
}

func TestStoreSaveLoadRemoveScan(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testSnapshot(t, 15, 6)
	b := testSnapshot(t, 9, 7)
	b.Dataset, b.Partition = "trips/2", 0 // exercises path escaping
	if _, err := st.Save(a); err != nil {
		t.Fatalf("Save a: %v", err)
	}
	if _, err := st.Save(b); err != nil {
		t.Fatalf("Save b: %v", err)
	}
	// An unrelated file and an orphaned temp file must be tolerated.
	os.WriteFile(filepath.Join(dir, "NOTES.txt"), []byte("hi"), 0o644)
	os.WriteFile(st.Path("trips", 7)+".tmp", []byte("torn"), 0o644)

	got, err := st.Load("trips", 7)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Fingerprint != a.Fingerprint {
		t.Fatal("loaded wrong snapshot")
	}
	if _, err := st.Load("trips/2", 0); err != nil {
		t.Fatalf("Load escaped dataset: %v", err)
	}

	entries, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("Scan found %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].Dataset != "trips" || entries[1].Dataset != "trips/2" {
		t.Fatalf("Scan order/content wrong: %+v", entries)
	}
	if _, err := os.Stat(st.Path("trips", 7) + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("Scan did not clean the orphaned temp file")
	}

	// Overwrite replaces atomically.
	a2 := testSnapshot(t, 15, 8)
	if _, err := st.Save(a2); err != nil {
		t.Fatal(err)
	}
	got, err = st.Load("trips", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != a2.Fingerprint {
		t.Fatal("overwrite did not replace snapshot")
	}

	if err := st.Remove("trips", 7); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("trips", 7); err != nil {
		t.Fatalf("Remove of absent snapshot errored: %v", err)
	}
	if _, err := st.Load("trips", 7); !os.IsNotExist(err) {
		t.Fatalf("Load after Remove: %v", err)
	}
}

func TestParseFilename(t *testing.T) {
	cases := []struct {
		name string
		ds   string
		pid  int
		ok   bool
	}{
		{Filename("trips", 3), "trips", 3, true},
		{Filename("a-p2", 4), "a-p2", 4, true},
		{Filename("x/y z", 0), "x/y z", 0, true},
		{"trips-p3.snap.tmp", "", 0, false},
		{"random.txt", "", 0, false},
		{"nopid.snap", "", 0, false},
		{"trips-p-3.snap", "", 0, false},
	}
	for _, c := range cases {
		ds, pid, ok := ParseFilename(c.name)
		if ok != c.ok || ds != c.ds || pid != c.pid {
			t.Errorf("ParseFilename(%q) = (%q, %d, %t), want (%q, %d, %t)",
				c.name, ds, pid, ok, c.ds, c.pid, c.ok)
		}
	}
}

// TestStoreFaultInjection exercises the seeded chaos plans: torn writes
// and bit flips must always be classified corrupt on load; crashes leave
// the final path untouched; schedules are deterministic per seed.
func TestStoreFaultInjection(t *testing.T) {
	s := testSnapshot(t, 12, 9)

	t.Run("torn", func(t *testing.T) {
		st, _ := NewStore(t.TempDir())
		st.Faults = &FaultPlan{Seed: 3, TornRate: 1}
		if _, err := st.Save(s); err != nil {
			t.Fatalf("torn Save reported failure: %v", err)
		}
		_, err := st.Load(s.Dataset, s.Partition)
		if !IsCorrupt(err) {
			t.Fatalf("torn snapshot load: want CorruptError, got %v", err)
		}
	})

	t.Run("flip", func(t *testing.T) {
		st, _ := NewStore(t.TempDir())
		st.Faults = &FaultPlan{Seed: 4, FlipRate: 1}
		if _, err := st.Save(s); err != nil {
			t.Fatalf("flip Save reported failure: %v", err)
		}
		if _, err := st.Load(s.Dataset, s.Partition); err == nil {
			t.Fatal("bit-flipped snapshot decoded successfully")
		}
	})

	t.Run("crash", func(t *testing.T) {
		st, _ := NewStore(t.TempDir())
		// First save clean, then crash an overwrite: the old snapshot
		// must survive.
		if _, err := st.Save(s); err != nil {
			t.Fatal(err)
		}
		st.Faults = &FaultPlan{Seed: 5, CrashRate: 1}
		_, err := st.Save(s)
		var inj *InjectedFault
		if !errors.As(err, &inj) || inj.Kind != "crash" {
			t.Fatalf("want injected crash, got %v", err)
		}
		if _, err := st.Load(s.Dataset, s.Partition); err != nil {
			t.Fatalf("old snapshot lost after crashed overwrite: %v", err)
		}
		// The orphan temp file exists until the next Scan.
		if _, err := os.Stat(st.Path(s.Dataset, s.Partition) + ".tmp"); err != nil {
			t.Fatalf("crashed write left no temp file: %v", err)
		}
		if _, err := st.Scan(); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(st.Path(s.Dataset, s.Partition) + ".tmp"); !os.IsNotExist(err) {
			t.Fatal("Scan did not clean crashed temp file")
		}
	})

	t.Run("fail", func(t *testing.T) {
		st, _ := NewStore(t.TempDir())
		st.Faults = &FaultPlan{Seed: 6, FailRate: 1}
		_, err := st.Save(s)
		var inj *InjectedFault
		if !errors.As(err, &inj) || inj.Kind != "fail" {
			t.Fatalf("want injected fail, got %v", err)
		}
		if _, err := os.Stat(st.Path(s.Dataset, s.Partition)); !os.IsNotExist(err) {
			t.Fatal("failed save left a file at the final path")
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		outcome := func() []bool {
			st, _ := NewStore(t.TempDir())
			st.Faults = &FaultPlan{Seed: 11, TornRate: 0.5}
			var torn []bool
			for i := 0; i < 20; i++ {
				st.Save(s)
				_, err := st.Load(s.Dataset, s.Partition)
				torn = append(torn, IsCorrupt(err))
			}
			return torn
		}
		if !reflect.DeepEqual(outcome(), outcome()) {
			t.Fatal("fault schedule not deterministic for a fixed seed")
		}
	})
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=7,crash=0.1,fail=0.02,torn=0.2,flip=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.CrashRate != 0.1 || p.FailRate != 0.02 || p.TornRate != 0.2 || p.FlipRate != 0.1 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if _, err := ParseFaultPlan("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseFaultPlan("torn"); err == nil {
		t.Fatal("missing value accepted")
	}
	if p, err := ParseFaultPlan(" "); err != nil || p.Seed != 1 {
		t.Fatalf("empty spec: %v %+v", err, p)
	}
}
