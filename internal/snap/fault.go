package snap

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// FaultPlan configures deterministic, seeded fault injection on snapshot
// writes — the storage-side counterpart of dnet's network FaultPlan. Each
// Save rolls the dice in a fixed order (crash, fail, torn, flip), so a
// fixed plan plus a fixed save sequence produces a reproducible fault
// schedule.
//
// The same plan drives the snap/dnet chaos tests and
// `dita-worker -snap-chaos` manual soak testing. Never enable it in
// production.
type FaultPlan struct {
	// Seed makes the fault schedule deterministic.
	Seed int64
	// CrashRate is the probability a Save "dies" mid-write: a random
	// prefix lands in the temp file, nothing is renamed, and Save returns
	// an InjectedFault — the SIGKILL-mid-write model. The final path is
	// untouched.
	CrashRate float64
	// FailRate is the probability a Save fails cleanly with an injected
	// I/O error before writing (disk full, permission flip).
	FailRate float64
	// TornRate is the probability a Save commits only a random prefix of
	// the image yet renames it into place — the power-loss-with-reordered-
	// writes model that the sealed footer exists to catch. The reader must
	// classify the file as corrupt, never decode it.
	TornRate float64
	// FlipRate is the probability one random bit of the image is flipped
	// before the write — the bit-rot model the checksums exist to catch.
	FlipRate float64

	mu  sync.Mutex
	rng *rand.Rand
}

// ParseFaultPlan parses a comma-separated spec like
// "seed=7,crash=0.1,fail=0.02,torn=0.2,flip=0.1". Unknown keys are an
// error; every key is optional.
func ParseFaultPlan(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("snap: fault spec %q: want key=value", field)
		}
		var err error
		switch k {
		case "seed":
			plan.Seed, err = strconv.ParseInt(v, 10, 64)
		case "crash":
			plan.CrashRate, err = strconv.ParseFloat(v, 64)
		case "fail":
			plan.FailRate, err = strconv.ParseFloat(v, 64)
		case "torn":
			plan.TornRate, err = strconv.ParseFloat(v, 64)
		case "flip":
			plan.FlipRate, err = strconv.ParseFloat(v, 64)
		default:
			return nil, fmt.Errorf("snap: fault spec: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("snap: fault spec %q: %w", field, err)
		}
	}
	return plan, nil
}

// InjectedFault is the error an injected crash or I/O failure returns. It
// is distinguishable from real filesystem errors so tests can assert the
// fault fired.
type InjectedFault struct {
	Kind string // "crash" or "fail"
}

func (e *InjectedFault) Error() string { return "snap: injected fault: " + e.Kind }

// Apply rolls the plan's dice for one write over an encoded image. It is
// exported for sibling storage packages (internal/wal reuses the same
// fault model on log appends) and the package's own Save path.
func (p *FaultPlan) Apply(data []byte) (write []byte, crashAfter int, err error) {
	return p.apply(data)
}

// apply rolls the plan's dice for one Save over the encoded image. It
// returns the (possibly mutilated) bytes to write, a crash offset
// (-1 = no crash), or an immediate injected error.
func (p *FaultPlan) apply(data []byte) (write []byte, crashAfter int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	if p.CrashRate > 0 && p.rng.Float64() < p.CrashRate {
		return data, p.rng.Intn(len(data) + 1), nil
	}
	if p.FailRate > 0 && p.rng.Float64() < p.FailRate {
		return nil, -1, &InjectedFault{Kind: "fail"}
	}
	if p.TornRate > 0 && p.rng.Float64() < p.TornRate {
		// Keep a strict prefix so the seal footer is always lost.
		n := p.rng.Intn(len(data))
		return data[:n], -1, nil
	}
	if p.FlipRate > 0 && p.rng.Float64() < p.FlipRate {
		mut := append([]byte(nil), data...)
		i := p.rng.Intn(len(mut))
		mut[i] ^= 1 << uint(p.rng.Intn(8))
		return mut, -1, nil
	}
	return data, -1, nil
}
