package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{0, 2}, 2},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.SqDist(c.q); math.Abs(got-c.want*c.want) > 1e-9 {
			t.Errorf("SqDist(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		d1, d2 := a.Dist(b), b.Dist(a)
		if math.IsInf(d1, 1) || math.IsNaN(d1) {
			// Overflow from quick's extreme inputs; symmetry still requires
			// both directions to degrade identically.
			return math.IsInf(d2, 1) == math.IsInf(d1, 1) && math.IsNaN(d2) == math.IsNaN(d1)
		}
		return d1 == d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{rng.Float64() * 10, rng.Float64() * 10}
		b := Point{rng.Float64() * 10, rng.Float64() * 10}
		c := Point{rng.Float64() * 10, rng.Float64() * 10}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestEmptyMBR(t *testing.T) {
	e := EmptyMBR()
	if !e.IsEmpty() {
		t.Fatal("EmptyMBR should be empty")
	}
	if e.Contains(Point{0, 0}) {
		t.Error("empty MBR should contain nothing")
	}
	if got := e.Area(); got != 0 {
		t.Errorf("empty area = %v", got)
	}
	if !math.IsInf(e.MinDist(Point{1, 1}), 1) {
		t.Error("MinDist to empty MBR should be +Inf")
	}
	// Extending empty yields the point rectangle.
	p := Point{2, 3}
	if got := e.Extend(p); got != NewMBR(p) {
		t.Errorf("Extend(empty, p) = %v", got)
	}
	// Union with empty is identity.
	m := MBR{Point{0, 0}, Point{1, 1}}
	if got := e.Union(m); got != m {
		t.Errorf("empty.Union(m) = %v", got)
	}
	if got := m.Union(e); got != m {
		t.Errorf("m.Union(empty) = %v", got)
	}
	if got := e.Expand(1); !got.IsEmpty() {
		t.Errorf("expanding empty should stay empty, got %v", got)
	}
}

func TestMBROf(t *testing.T) {
	pts := []Point{{1, 5}, {3, 2}, {-1, 4}}
	m := MBROf(pts)
	want := MBR{Point{-1, 2}, Point{3, 5}}
	if m != want {
		t.Errorf("MBROf = %v, want %v", m, want)
	}
	if got := MBROf(nil); !got.IsEmpty() {
		t.Errorf("MBROf(nil) = %v, want empty", got)
	}
}

func TestMBRContainsCovers(t *testing.T) {
	m := MBR{Point{0, 0}, Point{4, 4}}
	if !m.Contains(Point{0, 0}) || !m.Contains(Point{4, 4}) || !m.Contains(Point{2, 2}) {
		t.Error("Contains should include borders and interior")
	}
	if m.Contains(Point{4.001, 2}) {
		t.Error("Contains should exclude outside points")
	}
	inner := MBR{Point{1, 1}, Point{3, 3}}
	if !m.Covers(inner) {
		t.Error("m should cover inner")
	}
	if inner.Covers(m) {
		t.Error("inner should not cover m")
	}
	if !m.Covers(m) {
		t.Error("Covers should be reflexive")
	}
	if !m.Covers(EmptyMBR()) {
		t.Error("anything covers empty")
	}
}

func TestMBRIntersects(t *testing.T) {
	a := MBR{Point{0, 0}, Point{2, 2}}
	b := MBR{Point{2, 2}, Point{3, 3}} // corner touch
	c := MBR{Point{2.1, 2.1}, Point{3, 3}}
	if !a.Intersects(b) {
		t.Error("corner-touching rectangles intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint rectangles should not intersect")
	}
	if a.Intersects(EmptyMBR()) {
		t.Error("nothing intersects empty")
	}
}

func TestMinDist(t *testing.T) {
	m := MBR{Point{1, 1}, Point{3, 3}}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{2, 2}, 0},          // inside
		{Point{1, 1}, 0},          // corner
		{Point{0, 2}, 1},          // left of
		{Point{2, 5}, 2},          // above
		{Point{0, 0}, math.Sqrt2}, // diagonal corner
		{Point{5, 5}, math.Sqrt(8)},
	}
	for _, c := range cases {
		if got := m.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// MinDist must lower-bound the distance from the query point to every point
// inside the rectangle — this is the property all index pruning relies on.
func TestMinDistIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a := Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5}
		b := Point{rng.Float64()*10 - 5, rng.Float64()*10 - 5}
		m := NewMBR(a).Extend(b)
		q := Point{rng.Float64()*20 - 10, rng.Float64()*20 - 10}
		// Random point inside m.
		in := Point{
			m.Min.X + rng.Float64()*(m.Max.X-m.Min.X),
			m.Min.Y + rng.Float64()*(m.Max.Y-m.Min.Y),
		}
		if md := m.MinDist(q); md > q.Dist(in)+1e-9 {
			t.Fatalf("MinDist %v > actual %v for q=%v m=%v in=%v", md, q.Dist(in), q, m, in)
		}
		if xd := m.MaxDist(q); xd < q.Dist(in)-1e-9 {
			t.Fatalf("MaxDist %v < actual %v", xd, q.Dist(in))
		}
	}
}

func TestMinDistMBR(t *testing.T) {
	a := MBR{Point{0, 0}, Point{1, 1}}
	b := MBR{Point{4, 1}, Point{5, 2}}
	if got := a.MinDistMBR(b); math.Abs(got-3) > 1e-12 {
		t.Errorf("MinDistMBR = %v, want 3", got)
	}
	c := MBR{Point{0.5, 0.5}, Point{2, 2}}
	if got := a.MinDistMBR(c); got != 0 {
		t.Errorf("overlapping MinDistMBR = %v, want 0", got)
	}
	d := MBR{Point{3, 4}, Point{5, 6}}
	if got := a.MinDistMBR(d); math.Abs(got-a.Min.Dist(Point{0, 0}.Add(Point{2, 3}).Add(Point{1, 1}).Sub(Point{1, 1}))) > 10 {
		// sanity only: diagonal gap (2,3) from corner (1,1) to (3,4)
		want := math.Sqrt(2*2 + 3*3)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("diagonal MinDistMBR = %v, want %v", got, want)
		}
	}
}

func TestExpandAndCoverage(t *testing.T) {
	m := MBR{Point{1, 1}, Point{2, 2}}
	e := m.Expand(0.5)
	want := MBR{Point{0.5, 0.5}, Point{2.5, 2.5}}
	if e != want {
		t.Errorf("Expand = %v, want %v", e, want)
	}
	if !e.Covers(m) {
		t.Error("expanded MBR must cover original")
	}
}

// Expand(r).Contains(p) must be equivalent to MinDist(p) <= r for
// axis-aligned metrics... it is not exactly (corners differ: Chebyshev vs
// Euclidean), but Expand must at least contain every point within r in
// Euclidean distance.
func TestExpandContainsBall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		m := NewMBR(Point{rng.Float64(), rng.Float64()}).Extend(Point{rng.Float64() * 3, rng.Float64() * 3})
		r := rng.Float64()
		q := Point{rng.Float64()*5 - 1, rng.Float64()*5 - 1}
		if m.MinDist(q) <= r && !m.Expand(r).Contains(q) {
			t.Fatalf("point %v within %v of %v but not in expansion", q, r, m)
		}
	}
}

func TestUnionCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	randMBR := func() MBR {
		return NewMBR(Point{rng.Float64(), rng.Float64()}).Extend(Point{rng.Float64(), rng.Float64()})
	}
	for i := 0; i < 500; i++ {
		a, b, c := randMBR(), randMBR(), randMBR()
		if a.Union(b) != b.Union(a) {
			t.Fatal("union not commutative")
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			t.Fatal("union not associative")
		}
		u := a.Union(b)
		if !u.Covers(a) || !u.Covers(b) {
			t.Fatal("union must cover operands")
		}
	}
}

func TestCenterAreaMargin(t *testing.T) {
	m := MBR{Point{0, 0}, Point{4, 2}}
	if got := m.Center(); got != (Point{2, 1}) {
		t.Errorf("Center = %v", got)
	}
	if got := m.Area(); got != 8 {
		t.Errorf("Area = %v", got)
	}
	if got := m.Margin(); got != 6 {
		t.Errorf("Margin = %v", got)
	}
}

func TestStrings(t *testing.T) {
	p := Point{1, 2}
	if p.String() == "" {
		t.Error("empty point string")
	}
	m := MBR{Point{0, 1}, Point{0, 4}}
	if m.String() != "[(0, 1), (0, 4)]" {
		t.Errorf("MBR string = %q", m.String())
	}
}
