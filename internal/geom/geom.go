// Package geom provides the planar geometric primitives used throughout
// DITA: points, minimum bounding rectangles (MBRs), and the distance
// predicates the paper's filters are built on (point-to-point Euclidean
// distance, point-to-MBR MinDist, MBR expansion and coverage).
//
// Trajectories in DITA are sequences of 2-dimensional points
// (latitude, longitude); see Definition 2.1 of the paper. The package keeps
// everything in float64 and is allocation-free on the hot paths.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. The paper stores (latitude, longitude);
// we use X, Y throughout and leave the interpretation to the caller.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SqDist returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only callers.
func (p Point) SqDist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// MBR is a minimum bounding rectangle, closed on all sides. The zero value
// is not a valid rectangle; use EmptyMBR or NewMBR.
type MBR struct {
	Min, Max Point
}

// EmptyMBR returns the identity element for Extend/Union: a rectangle that
// contains nothing and unions to its argument.
func EmptyMBR() MBR {
	inf := math.Inf(1)
	return MBR{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// NewMBR returns the MBR of a single point.
func NewMBR(p Point) MBR { return MBR{Min: p, Max: p} }

// MBROf returns the MBR covering all given points. It returns EmptyMBR for
// an empty slice.
func MBROf(pts []Point) MBR {
	m := EmptyMBR()
	for _, p := range pts {
		m = m.Extend(p)
	}
	return m
}

// IsEmpty reports whether the rectangle contains no points.
func (m MBR) IsEmpty() bool { return m.Min.X > m.Max.X || m.Min.Y > m.Max.Y }

// Extend returns the smallest MBR covering both m and p.
func (m MBR) Extend(p Point) MBR {
	return MBR{
		Min: Point{math.Min(m.Min.X, p.X), math.Min(m.Min.Y, p.Y)},
		Max: Point{math.Max(m.Max.X, p.X), math.Max(m.Max.Y, p.Y)},
	}
}

// Union returns the smallest MBR covering both rectangles.
func (m MBR) Union(o MBR) MBR {
	if m.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return m
	}
	return MBR{
		Min: Point{math.Min(m.Min.X, o.Min.X), math.Min(m.Min.Y, o.Min.Y)},
		Max: Point{math.Max(m.Max.X, o.Max.X), math.Max(m.Max.Y, o.Max.Y)},
	}
}

// Contains reports whether p lies inside the (closed) rectangle.
func (m MBR) Contains(p Point) bool {
	return p.X >= m.Min.X && p.X <= m.Max.X && p.Y >= m.Min.Y && p.Y <= m.Max.Y
}

// Covers reports whether every point of o lies inside m. An empty o is
// covered by anything; an empty m covers nothing but an empty o.
func (m MBR) Covers(o MBR) bool {
	if o.IsEmpty() {
		return true
	}
	return m.Contains(o.Min) && m.Contains(o.Max)
}

// Intersects reports whether the two rectangles share at least one point.
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() {
		return false
	}
	return m.Min.X <= o.Max.X && o.Min.X <= m.Max.X &&
		m.Min.Y <= o.Max.Y && o.Min.Y <= m.Max.Y
}

// Expand grows the rectangle by r on every side. This is the paper's
// EMBR_{Q,τ} construction (Section 5.3.3, Lemma 5.4). Expanding an empty
// rectangle yields an empty rectangle.
func (m MBR) Expand(r float64) MBR {
	if m.IsEmpty() {
		return m
	}
	return MBR{
		Min: Point{m.Min.X - r, m.Min.Y - r},
		Max: Point{m.Max.X + r, m.Max.Y + r},
	}
}

// MinDist returns the minimum Euclidean distance from p to the rectangle:
// zero when p is inside, otherwise the distance to the nearest side or
// corner. This is MinDist(q, MBR) in Section 4.2.2 and satisfies
// MinDist(p, m) <= p.Dist(x) for every x in m.
func (m MBR) MinDist(p Point) float64 {
	if m.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(math.Max(m.Min.X-p.X, 0), p.X-m.Max.X)
	dy := math.Max(math.Max(m.Min.Y-p.Y, 0), p.Y-m.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MinDistMBR returns the minimum distance between any pair of points drawn
// from the two rectangles (zero when they intersect).
func (m MBR) MinDistMBR(o MBR) float64 {
	if m.IsEmpty() || o.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(math.Max(o.Min.X-m.Max.X, 0), m.Min.X-o.Max.X)
	dy := math.Max(math.Max(o.Min.Y-m.Max.Y, 0), m.Min.Y-o.Max.Y)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum distance from p to any point of the rectangle
// (the distance to the farthest corner). Useful as an upper bound.
func (m MBR) MaxDist(p Point) float64 {
	if m.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(math.Abs(p.X-m.Min.X), math.Abs(p.X-m.Max.X))
	dy := math.Max(math.Abs(p.Y-m.Min.Y), math.Abs(p.Y-m.Max.Y))
	return math.Sqrt(dx*dx + dy*dy)
}

// Center returns the rectangle's center point.
func (m MBR) Center() Point {
	return Point{(m.Min.X + m.Max.X) / 2, (m.Min.Y + m.Max.Y) / 2}
}

// Area returns the rectangle's area; zero for empty or degenerate
// rectangles.
func (m MBR) Area() float64 {
	if m.IsEmpty() {
		return 0
	}
	return (m.Max.X - m.Min.X) * (m.Max.Y - m.Min.Y)
}

// Margin returns half the rectangle's perimeter (the STR/R*-tree "margin"
// metric).
func (m MBR) Margin() float64 {
	if m.IsEmpty() {
		return 0
	}
	return (m.Max.X - m.Min.X) + (m.Max.Y - m.Min.Y)
}

// String implements fmt.Stringer in the paper's [(minx,miny), (maxx,maxy)]
// notation.
func (m MBR) String() string {
	return fmt.Sprintf("[(%g, %g), (%g, %g)]", m.Min.X, m.Min.Y, m.Max.X, m.Max.Y)
}
