// Package baseline implements the distributed comparison systems of the
// paper's evaluation (Section 7.1), re-created from their descriptions and
// run on the same cluster substrate as DITA so costs are comparable:
//
//   - Naive: no index. Queries are broadcast; every worker scans its
//     trajectories with threshold verification.
//   - Simba: adapted from the in-memory spatial system [47] exactly as the
//     paper did: "we first indexed the first points of trajectories using
//     Simba, and then used Simba to find trajectories whose first point was
//     within a distance of τ from the query trajectory's first point as
//     the candidates. Finally we verified the candidates." Joins match
//     partition-to-partition (Simba ships whole partitions, unlike DITA's
//     per-trajectory shuffle).
//   - DFT: adapted from the distributed trajectory search system [46]: a
//     non-clustered segment R-tree per partition, per-query candidate
//     bitmaps collected at the master, merged, and broadcast back before
//     verification — the "barrier between indexing and verification" whose
//     parallelism cost the paper highlights, plus the bitmap memory that
//     makes DFT joins infeasible (Section 7.2.2).
//
// All three are exact: their filters are sound supersets and candidates are
// verified with the same threshold-distance routines DITA uses.
package baseline

import (
	"sort"

	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Searcher is a distributed trajectory similarity search system.
type Searcher interface {
	// Name identifies the system in experiment output.
	Name() string
	// Search returns trajectories within tau of q, sorted by ID.
	Search(q *traj.T, tau float64) []*traj.T
	// Cluster exposes the substrate for cost accounting.
	Cluster() *cluster.Cluster
}

// verifyAll runs threshold verification over candidates (the baselines use
// the same optimized DTW(T,Q,τ) as DITA, per the paper's setup).
func verifyAll(m measure.Measure, cands []*traj.T, q []geom.Point, tau float64) []*traj.T {
	var out []*traj.T
	for _, t := range cands {
		if _, ok := m.DistanceThreshold(t.Points, q, tau); ok {
			out = append(out, t)
		}
	}
	return out
}

func sortByID(ts []*traj.T) {
	sort.Slice(ts, func(a, b int) bool { return ts[a].ID < ts[b].ID })
}
