package baseline

import (
	"testing"

	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

func bruteSearch(d *traj.Dataset, m measure.Measure, q *traj.T, tau float64) map[int]bool {
	out := map[int]bool{}
	for _, t := range d.Trajs {
		if m.Distance(t.Points, q.Points) <= tau {
			out[t.ID] = true
		}
	}
	return out
}

func checkSearch(t *testing.T, name string, got []*traj.T, want map[int]bool) {
	t.Helper()
	ids := map[int]bool{}
	for _, tr := range got {
		if ids[tr.ID] {
			t.Fatalf("%s: duplicate result %d", name, tr.ID)
		}
		ids[tr.ID] = true
	}
	if len(ids) != len(want) {
		t.Fatalf("%s: got %d results, want %d", name, len(ids), len(want))
	}
	for id := range want {
		if !ids[id] {
			t.Fatalf("%s: missing %d", name, id)
		}
	}
}

// All three baselines must return exactly the brute-force answers — they
// are slower than DITA, not wronger.
func TestBaselinesExact(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 1))
	for _, m := range []measure.Measure{measure.DTW{}, measure.Frechet{}} {
		cl := cluster.New(cluster.DefaultConfig(4))
		systems := []Searcher{
			NewNaive(d, m, cl),
			NewSimba(d, m, cluster.New(cluster.DefaultConfig(4)), 9),
			NewDFT(d, m, cluster.New(cluster.DefaultConfig(4)), 9),
		}
		var tau float64
		if m.Accumulation() == measure.AccumMax {
			tau = 0.01
		} else {
			tau = 0.05
		}
		for _, q := range gen.Queries(d, 10, 2) {
			want := bruteSearch(d, m, q, tau)
			for _, s := range systems {
				got := s.Search(q, tau)
				checkSearch(t, m.Name()+"/"+s.Name(), got, want)
			}
		}
	}
}

func TestBaselineDegenerate(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(50, 3))
	cl := cluster.New(cluster.DefaultConfig(2))
	for _, s := range []Searcher{
		NewNaive(d, nil, cl),
		NewSimba(d, nil, nil, 0),
		NewDFT(d, nil, nil, 0),
	} {
		if got := s.Search(nil, 1); got != nil {
			t.Errorf("%s: nil query returned %v", s.Name(), got)
		}
		if got := s.Search(&traj.T{}, 1); got != nil {
			t.Errorf("%s: empty query returned %v", s.Name(), got)
		}
		if s.Cluster() == nil {
			t.Errorf("%s: nil cluster", s.Name())
		}
	}
}

func TestSimbaJoinExact(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(80, 4))
	b := gen.Generate(gen.BeijingLike(70, 5))
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	cl := cluster.New(cluster.DefaultConfig(4))
	sa := NewSimba(a, measure.DTW{}, cl, 6)
	sb := NewSimba(b, measure.DTW{}, cl, 6)
	pairs := sa.Join(sb, 0.04)
	want := map[[2]int]bool{}
	for _, t1 := range a.Trajs {
		for _, t2 := range b.Trajs {
			if (measure.DTW{}).Distance(t1.Points, t2.Points) <= 0.04 {
				want[[2]int{t1.ID, t2.ID}] = true
			}
		}
	}
	got := map[[2]int]bool{}
	for _, p := range pairs {
		got[[2]int{p.T.ID, p.Q.ID}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("Simba join: %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("Simba join missing %v", k)
		}
	}
}

func TestNaiveJoinExact(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(40, 6))
	b := gen.Generate(gen.BeijingLike(40, 7))
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	cl := cluster.New(cluster.DefaultConfig(2))
	n := NewNaive(a, measure.DTW{}, cl)
	pairs := n.Join(b, 0.04)
	count := 0
	for _, t1 := range a.Trajs {
		for _, t2 := range b.Trajs {
			if (measure.DTW{}).Distance(t1.Points, t2.Points) <= 0.04 {
				count++
			}
		}
	}
	if len(pairs) != count {
		t.Fatalf("Naive join: %d pairs, want %d", len(pairs), count)
	}
	var _ []core.Pair = pairs
}

// DFT's defining costs must be visible: bitmap sizes, barrier traffic, and
// a larger local index than Simba's.
func TestDFTCostCharacteristics(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(400, 8))
	f := NewDFT(d, measure.DTW{}, cluster.New(cluster.DefaultConfig(4)), 8)
	if f.BitmapBytes() != (400+7)/8 {
		t.Errorf("BitmapBytes = %d", f.BitmapBytes())
	}
	if f.JoinBitmapBytes() != int64(400)*int64(f.BitmapBytes()) {
		t.Errorf("JoinBitmapBytes = %d", f.JoinBitmapBytes())
	}
	s := NewSimba(d, measure.DTW{}, cluster.New(cluster.DefaultConfig(4)), 8)
	_, dftLocal := f.IndexSizeBytes()
	_, simbaLocal := s.IndexSizeBytes()
	if dftLocal <= simbaLocal {
		t.Errorf("DFT local index (%d) should exceed Simba's (%d): it indexes every segment", dftLocal, simbaLocal)
	}
	// The barrier should show up as traffic to/from the master.
	q := gen.Queries(d, 1, 9)[0]
	f.Search(q, 0.02)
	if f.Cluster().Metrics().Messages == 0 {
		t.Error("DFT search produced no network messages")
	}
}

func TestBaselineRejectsUnanchoredMeasure(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(20, 10))
	defer func() {
		if recover() == nil {
			t.Error("Simba must reject edit measures")
		}
	}()
	NewSimba(d, measure.EDR{Eps: 1}, nil, 2)
}
