package baseline

import (
	"sync"

	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Naive is the index-free baseline: trajectories are scattered round-robin
// over the workers, a query is broadcast, and every worker scans its whole
// share with threshold verification.
type Naive struct {
	m     measure.Measure
	cl    *cluster.Cluster
	parts [][]*traj.T
}

// NewNaive partitions the dataset round-robin over the cluster's workers.
func NewNaive(d *traj.Dataset, m measure.Measure, cl *cluster.Cluster) *Naive {
	if m == nil {
		m = measure.DTW{}
	}
	if cl == nil {
		cl = cluster.New(cluster.DefaultConfig(4))
	}
	n := &Naive{m: m, cl: cl, parts: make([][]*traj.T, cl.Workers())}
	for i, t := range d.Trajs {
		w := i % cl.Workers()
		n.parts[w] = append(n.parts[w], t)
	}
	return n
}

// Name implements Searcher.
func (n *Naive) Name() string { return "Naive" }

// Cluster implements Searcher.
func (n *Naive) Cluster() *cluster.Cluster { return n.cl }

// Search implements Searcher by full distributed scan.
func (n *Naive) Search(q *traj.T, tau float64) []*traj.T {
	if q == nil || len(q.Points) == 0 {
		return nil
	}
	n.cl.Broadcast(0, q.Bytes())
	results := make([][]*traj.T, n.cl.Workers())
	var tasks []cluster.Task
	for w := range n.parts {
		w := w
		if len(n.parts[w]) == 0 {
			continue
		}
		tasks = append(tasks, cluster.Task{Worker: w, Fn: func() {
			results[w] = verifyAll(n.m, n.parts[w], q.Points, tau)
		}})
	}
	n.cl.Run(tasks)
	var out []*traj.T
	for _, r := range results {
		out = append(out, r...)
	}
	sortByID(out)
	return out
}

// Join runs the index-free distributed nested-loop join: every partition
// of the left side is verified against the full broadcast right side. The
// paper reports Naive "too slow to complete" for joins on real datasets;
// it is provided for correctness cross-checks at small scale.
func (n *Naive) Join(other *traj.Dataset, tau float64) []core.Pair {
	otherBytes := 0
	for _, t := range other.Trajs {
		otherBytes += t.Bytes()
	}
	n.cl.Broadcast(0, otherBytes)
	var mu sync.Mutex
	var pairs []core.Pair
	var tasks []cluster.Task
	for w := range n.parts {
		w := w
		if len(n.parts[w]) == 0 {
			continue
		}
		tasks = append(tasks, cluster.Task{Worker: w, Fn: func() {
			var local []core.Pair
			for _, t := range n.parts[w] {
				for _, q := range other.Trajs {
					if d, ok := n.m.DistanceThreshold(t.Points, q.Points, tau); ok {
						local = append(local, core.Pair{T: t, Q: q, Distance: d})
					}
				}
			}
			mu.Lock()
			pairs = append(pairs, local...)
			mu.Unlock()
		}})
	}
	n.cl.Run(tasks)
	return pairs
}
