package baseline

import (
	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/rtree"
	"dita/internal/str"
	"dita/internal/traj"
)

// DFT is the segment-based distributed trajectory search baseline adapted
// to threshold DTW search as in the paper's evaluation (Section 7.1). Its
// defining characteristics, which the paper's comparison hinges on:
//
//   - A non-clustered index: each partition's R-tree indexes trajectory
//     segments (consecutive point pairs), with a trajectory-id payload —
//     index probing yields ids, not data.
//   - A two-phase protocol with a master-side barrier: every worker probes
//     its segment index and produces a bitmap of surviving trajectory ids;
//     the master collects all bitmaps, merges them, and broadcasts the
//     merged bitmap; only then do workers verify their local survivors.
//     The barrier serializes indexing and verification ("DFT had less
//     parallelism than Simba and DITA").
//   - Bitmap memory that scales with dataset size per query, which is why
//     DFT cannot support joins on large data (Section 7.2.2); see
//     JoinBitmapBytes.
//
// The filter is sound for endpoint-anchored measures: a trajectory
// survives only if its first segment is within τ of q1 and its last
// segment is within τ of qn (dist(t1,q1) <= DTW and dist(tm,qn) <= DTW).
type DFT struct {
	m     measure.Measure
	cl    *cluster.Cluster
	parts []*dftPartition
	total int
	// localIndexBytes aggregates segment R-tree sizes: DFT's index is
	// "much bigger (even by one order of magnitude)" than DITA's local
	// index (Table 5) because every segment is an entry.
	localIndexBytes int
}

type dftPartition struct {
	id      int
	worker  int
	trajs   []*traj.T
	segIdx  *rtree.Tree // entries: segment MBRs; ID = trajIdx*2 + (0 first seg, 1 last seg)
	firstPt geom.MBR
}

// NewDFT builds segment indexes over nparts STR partitions (partitioned by
// first point, as DFT partitions segments spatially).
func NewDFT(d *traj.Dataset, m measure.Measure, cl *cluster.Cluster, nparts int) *DFT {
	if m == nil {
		m = measure.DTW{}
	}
	if !m.AlignsEndpoints() {
		panic("baseline: first/last-point filtering requires an endpoint-anchored measure (DTW or Fr\u00e9chet)")
	}
	if cl == nil {
		cl = cluster.New(cluster.DefaultConfig(4))
	}
	if nparts < 1 {
		nparts = cl.Workers()
	}
	f := &DFT{m: m, cl: cl, total: d.Len()}
	firsts := make([]geom.Point, d.Len())
	for i, t := range d.Trajs {
		firsts[i] = t.First()
	}
	for _, tile := range str.Tile(firsts, nparts) {
		p := &dftPartition{id: len(f.parts), firstPt: geom.EmptyMBR()}
		p.worker = p.id % cl.Workers()
		for _, i := range tile {
			p.trajs = append(p.trajs, d.Trajs[i])
			p.firstPt = p.firstPt.Extend(d.Trajs[i].First())
		}
		f.parts = append(f.parts, p)
	}
	var tasks []cluster.Task
	for _, p := range f.parts {
		p := p
		tasks = append(tasks, cluster.Task{Worker: p.worker, Fn: func() {
			var es []rtree.Entry
			for ti, t := range p.trajs {
				pts := t.Points
				// All segments are indexed (the non-clustered bulk);
				// first/last segments carry the ids the filter uses.
				for si := 0; si+1 < len(pts); si++ {
					mbr := geom.NewMBR(pts[si]).Extend(pts[si+1])
					id := -1
					if si == 0 {
						id = ti * 2
					} else if si == len(pts)-2 {
						id = ti*2 + 1
					}
					es = append(es, rtree.Entry{MBR: mbr, ID: id})
				}
				if len(pts) == 2 {
					// Single segment doubles as first and last.
					es = append(es, rtree.Entry{MBR: geom.NewMBR(pts[0]).Extend(pts[1]), ID: ti*2 + 1})
				}
			}
			p.segIdx = rtree.New(es)
		}})
	}
	cl.Run(tasks)
	for _, p := range f.parts {
		f.localIndexBytes += p.segIdx.SizeBytes()
	}
	return f
}

// Name implements Searcher.
func (f *DFT) Name() string { return "DFT" }

// Cluster implements Searcher.
func (f *DFT) Cluster() *cluster.Cluster { return f.cl }

// IndexSizeBytes returns (global, local) sizes; DFT has no global R-tree
// beyond partition MBRs, reported as a small constant per partition.
func (f *DFT) IndexSizeBytes() (int, int) { return 48 * len(f.parts), f.localIndexBytes }

// BitmapBytes is the per-query bitmap size: one bit per trajectory in the
// dataset (the paper measured 0.2 MB per query on the 11M-trajectory
// Beijing dataset with compressed bitmaps; a plain bitmap is n/8 bytes).
func (f *DFT) BitmapBytes() int { return (f.total + 7) / 8 }

// JoinBitmapBytes estimates the memory a DFT-style join would need: one
// bitmap per query trajectory (Section 7.2.2's 2.2 TB argument on
// Beijing).
func (f *DFT) JoinBitmapBytes() int64 { return int64(f.total) * int64(f.BitmapBytes()) }

// Search implements Searcher with the two-phase bitmap protocol.
func (f *DFT) Search(q *traj.T, tau float64) []*traj.T {
	if q == nil || len(q.Points) == 0 {
		return nil
	}
	q1, qn := q.Points[0], q.Points[len(q.Points)-1]
	const master = 0
	// Phase 1: probe segment indexes, build per-partition bitmaps.
	type bitmap map[int]uint8 // trajIdx -> bit0: first seg near q1, bit1: last seg near qn
	bitmaps := make([]bitmap, len(f.parts))
	var tasks []cluster.Task
	for i, p := range f.parts {
		i, p := i, p
		f.cl.Transfer(master, p.worker, q.Bytes())
		tasks = append(tasks, cluster.Task{Worker: p.worker, Fn: func() {
			bm := bitmap{}
			for _, e := range p.segIdx.WithinDist(q1, tau, nil) {
				if e.ID >= 0 && e.ID%2 == 0 {
					bm[e.ID/2] |= 1
				}
			}
			for _, e := range p.segIdx.WithinDist(qn, tau, nil) {
				if e.ID >= 0 && e.ID%2 == 1 {
					bm[e.ID/2] |= 2
				}
			}
			bitmaps[i] = bm
		}})
	}
	f.cl.Run(tasks)
	// Barrier: bitmaps travel to the master, are merged there, and the
	// merged bitmap is broadcast back (this is the parallelism bottleneck
	// the paper describes).
	for _, p := range f.parts {
		f.cl.Transfer(p.worker, master, f.BitmapBytes())
	}
	merge := make([]map[int]bool, len(f.parts))
	f.cl.Run([]cluster.Task{{Worker: master, Fn: func() {
		for i, bm := range bitmaps {
			keep := map[int]bool{}
			for ti, bits := range bm {
				if bits == 3 {
					keep[ti] = true
				}
			}
			merge[i] = keep
		}
	}}})
	f.cl.Broadcast(master, f.BitmapBytes())
	// Phase 2: verification of survivors on the owning workers.
	results := make([][]*traj.T, len(f.parts))
	tasks = tasks[:0]
	for i, p := range f.parts {
		i, p := i, p
		if len(merge[i]) == 0 {
			continue
		}
		tasks = append(tasks, cluster.Task{Worker: p.worker, Fn: func() {
			var cands []*traj.T
			for ti := range merge[i] {
				cands = append(cands, p.trajs[ti])
			}
			sortByID(cands)
			results[i] = verifyAll(f.m, cands, q.Points, tau)
		}})
	}
	f.cl.Run(tasks)
	var out []*traj.T
	for _, r := range results {
		out = append(out, r...)
	}
	sortByID(out)
	return out
}
