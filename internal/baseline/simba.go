package baseline

import (
	"sync"

	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/rtree"
	"dita/internal/str"
	"dita/internal/traj"
)

// Simba is the spatial-analytics baseline adapted to trajectories exactly
// as the paper's evaluation did (Section 7.1): trajectories are
// partitioned by their first point only (STR), each partition indexes the
// first points in an R-tree, and a search takes trajectories whose first
// point is within τ of the query's first point as candidates, then
// verifies. Joins are partition-to-partition: whole partitions are shipped
// when their first-point MBRs may contain result pairs.
type Simba struct {
	m     measure.Measure
	cl    *cluster.Cluster
	parts []*simbaPartition
	// global is the R-tree over partition first-point MBRs.
	global *rtree.Tree
	// BuildTime mirrors core.Engine's accounting for Table 5.
	localIndexBytes int
}

type simbaPartition struct {
	id     int
	worker int
	trajs  []*traj.T
	index  *rtree.Tree // over first points
	mbrF   geom.MBR
	bytes  int
}

// NewSimba builds the first-point index over nparts STR partitions.
func NewSimba(d *traj.Dataset, m measure.Measure, cl *cluster.Cluster, nparts int) *Simba {
	if m == nil {
		m = measure.DTW{}
	}
	if !m.AlignsEndpoints() {
		panic("baseline: first/last-point filtering requires an endpoint-anchored measure (DTW or Fr\u00e9chet)")
	}
	if cl == nil {
		cl = cluster.New(cluster.DefaultConfig(4))
	}
	if nparts < 1 {
		nparts = cl.Workers()
	}
	s := &Simba{m: m, cl: cl}
	firsts := make([]geom.Point, d.Len())
	for i, t := range d.Trajs {
		firsts[i] = t.First()
	}
	var ge []rtree.Entry
	for _, tile := range str.Tile(firsts, nparts) {
		p := &simbaPartition{id: len(s.parts), mbrF: geom.EmptyMBR()}
		p.worker = p.id % cl.Workers()
		for _, i := range tile {
			p.trajs = append(p.trajs, d.Trajs[i])
			p.mbrF = p.mbrF.Extend(d.Trajs[i].First())
			p.bytes += d.Trajs[i].Bytes()
		}
		s.parts = append(s.parts, p)
		ge = append(ge, rtree.Entry{MBR: p.mbrF, ID: p.id})
	}
	s.global = rtree.New(ge)
	// Local indexes are built in parallel on owners.
	var tasks []cluster.Task
	for _, p := range s.parts {
		p := p
		tasks = append(tasks, cluster.Task{Worker: p.worker, Fn: func() {
			es := make([]rtree.Entry, len(p.trajs))
			for i, t := range p.trajs {
				es[i] = rtree.Entry{MBR: geom.NewMBR(t.First()), ID: i}
			}
			p.index = rtree.New(es)
		}})
	}
	cl.Run(tasks)
	for _, p := range s.parts {
		s.localIndexBytes += p.index.SizeBytes()
	}
	return s
}

// Name implements Searcher.
func (s *Simba) Name() string { return "Simba" }

// Cluster implements Searcher.
func (s *Simba) Cluster() *cluster.Cluster { return s.cl }

// IndexSizeBytes returns (global, local) index sizes.
func (s *Simba) IndexSizeBytes() (int, int) { return s.global.SizeBytes(), s.localIndexBytes }

// Search implements Searcher: first-point filtering then verification.
func (s *Simba) Search(q *traj.T, tau float64) []*traj.T {
	if q == nil || len(q.Points) == 0 {
		return nil
	}
	q1 := q.Points[0]
	rel := s.global.WithinDist(q1, tau, nil)
	results := make([][]*traj.T, len(rel))
	var tasks []cluster.Task
	for i, en := range rel {
		i, p := i, s.parts[en.ID]
		s.cl.Transfer(0, p.worker, q.Bytes())
		tasks = append(tasks, cluster.Task{Worker: p.worker, Fn: func() {
			var cands []*traj.T
			for _, e := range p.index.WithinDist(q1, tau, nil) {
				cands = append(cands, p.trajs[e.ID])
			}
			results[i] = verifyAll(s.m, cands, q.Points, tau)
		}})
	}
	s.cl.Run(tasks)
	var out []*traj.T
	for _, r := range results {
		out = append(out, r...)
	}
	sortByID(out)
	return out
}

// Join computes the similarity join the Simba way: every partition pair
// whose first-point MBRs are within τ exchanges the **whole** left
// partition (the paper: "Simba processed join by matching partition to
// partition ... thus DITA sent much less data"), then the receiving worker
// filters by first point and verifies.
func (s *Simba) Join(other *Simba, tau float64) []core.Pair {
	var mu sync.Mutex
	var pairs []core.Pair
	var tasks []cluster.Task
	for _, pt := range s.parts {
		for _, pq := range other.parts {
			if pt.mbrF.MinDistMBR(pq.mbrF) > tau {
				continue
			}
			pt, pq := pt, pq
			// Ship the whole left partition to the right partition's
			// worker.
			s.cl.Transfer(pt.worker, pq.worker, pt.bytes)
			tasks = append(tasks, cluster.Task{Worker: pq.worker, Fn: func() {
				var local []core.Pair
				for _, t := range pt.trajs {
					for _, e := range pq.index.WithinDist(t.First(), tau, nil) {
						q := pq.trajs[e.ID]
						if d, ok := s.m.DistanceThreshold(t.Points, q.Points, tau); ok {
							local = append(local, core.Pair{T: t, Q: q, Distance: d})
						}
					}
				}
				mu.Lock()
				pairs = append(pairs, local...)
				mu.Unlock()
			}})
		}
	}
	s.cl.Run(tasks)
	return pairs
}
