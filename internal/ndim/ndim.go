// Package ndim extends DITA's distance machinery to d-dimensional
// trajectories (d >= 3), per the paper's Section 2.1 claim that "our
// method can be easily extended to support multi-dimensional data".
//
// The package provides d-dimensional points and MBRs, the DTW / Fréchet /
// EDR dynamic programs over them, and the pivot-based filter pipeline
// (endpoint + pivot accumulated minimum distance, Lemma 4.3) behind a
// Searcher that prunes with PAMD before verifying — the same
// filter–verification structure as the 2D engine, with the spatial
// STR/trie layers (which are inherently 2D in this codebase) replaced by
// the pivot filter. Typical uses: trajectories with altitude, or with a
// time axis as a third dimension.
package ndim

import (
	"fmt"
	"math"
	"sort"

	"dita/internal/dppool"
)

// Point is a d-dimensional location.
type Point []float64

// Dist returns the Euclidean distance between p and q. It panics if the
// dimensions differ.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.SqDist(q))
}

// SqDist returns the squared Euclidean distance.
func (p Point) SqDist(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("ndim: dimension mismatch %d vs %d", len(p), len(q)))
	}
	s := 0.0
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// MBR is a d-dimensional minimum bounding box.
type MBR struct {
	Min, Max Point
}

// MBROf returns the bounding box of the points (nil for an empty slice).
func MBROf(pts []Point) *MBR {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0])
	m := &MBR{Min: make(Point, d), Max: make(Point, d)}
	copy(m.Min, pts[0])
	copy(m.Max, pts[0])
	for _, p := range pts[1:] {
		for i := range p {
			if p[i] < m.Min[i] {
				m.Min[i] = p[i]
			}
			if p[i] > m.Max[i] {
				m.Max[i] = p[i]
			}
		}
	}
	return m
}

// MinDist returns the minimum distance from p to the box.
func (m *MBR) MinDist(p Point) float64 {
	s := 0.0
	for i := range p {
		if d := m.Min[i] - p[i]; d > 0 {
			s += d * d
		} else if d := p[i] - m.Max[i]; d > 0 {
			s += d * d
		}
	}
	return math.Sqrt(s)
}

// DTW computes d-dimensional Dynamic Time Warping (Definition 2.2 with the
// Euclidean point distance in R^d).
func DTW(t, q []Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	scratch := dppool.GetFloats(2 * (n + 1))
	defer scratch.Release()
	prev, cur := scratch.S[:n+1], scratch.S[n+1:]
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= n; j++ {
			d := t[i-1].Dist(q[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DTWThreshold is DTW with row-minimum early abandoning.
func DTWThreshold(t, q []Point, tau float64) (float64, bool) {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1), false
	}
	inf := math.Inf(1)
	scratch := dppool.GetFloats(2 * (n + 1))
	defer scratch.Release()
	prev, cur := scratch.S[:n+1], scratch.S[n+1:]
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		rowMin := inf
		for j := 1; j <= n; j++ {
			d := t[i-1].Dist(q[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > tau {
			return rowMin, false
		}
		prev, cur = cur, prev
	}
	return prev[n], prev[n] <= tau
}

// Frechet computes the d-dimensional discrete Fréchet distance.
func Frechet(t, q []Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	scratch := dppool.GetFloats(2 * (n + 1))
	defer scratch.Release()
	prev, cur := scratch.S[:n+1], scratch.S[n+1:]
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= n; j++ {
			d := t[i-1].Dist(q[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if d > best {
				cur[j] = d
			} else {
				cur[j] = best
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// EDR computes d-dimensional Edit Distance on Real sequence with matching
// tolerance eps.
func EDR(t, q []Point, eps float64) float64 {
	m, n := len(t), len(q)
	if m == 0 {
		return float64(n)
	}
	if n == 0 {
		return float64(m)
	}
	scratch := dppool.GetFloats(2 * (n + 1))
	defer scratch.Release()
	prev, cur := scratch.S[:n+1], scratch.S[n+1:]
	for j := 0; j <= n; j++ {
		prev[j] = float64(j)
	}
	epsSq := eps * eps
	for i := 1; i <= m; i++ {
		cur[0] = float64(i)
		for j := 1; j <= n; j++ {
			sub := 1.0
			if t[i-1].SqDist(q[j-1]) <= epsSq {
				sub = 0
			}
			best := prev[j-1] + sub
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// PAMD is the d-dimensional pivot accumulated minimum distance
// (Definition 4.2): dist(t1,q1) + dist(tm,qn) + Σ_p min_j dist(p, qj)
// over the pivot indices pivots (strictly interior). PAMD <= DTW.
func PAMD(t, q []Point, pivots []int) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	sum := t[0].Dist(q[0]) + t[m-1].Dist(q[n-1])
	for _, pi := range pivots {
		best := math.Inf(1)
		for _, qj := range q {
			if d := t[pi].SqDist(qj); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum
}

// SelectPivots picks up to k interior pivot indices by the neighbor-
// distance strategy (the 2D default), generalized to R^d.
func SelectPivots(t []Point, k int) []int {
	interior := len(t) - 2
	if k <= 0 || interior <= 0 {
		return nil
	}
	if k > interior {
		k = interior
	}
	type wi struct {
		w float64
		i int
	}
	ws := make([]wi, 0, interior)
	for i := 1; i < len(t)-1; i++ {
		ws = append(ws, wi{t[i-1].Dist(t[i]), i})
	}
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].i < ws[b].i
	})
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = ws[i].i
	}
	sort.Ints(idx)
	return idx
}

// Trajectory is a d-dimensional trajectory with an id.
type Trajectory struct {
	ID     int
	Points []Point
}

// Searcher answers threshold DTW searches over d-dimensional trajectories
// with the pivot filter: candidates whose PAMD exceeds τ are pruned
// (Lemma 4.3), the rest verified with early-abandoning DTW.
type Searcher struct {
	trajs  []*Trajectory
	pivots [][]int
	mbrs   []*MBR
	dim    int
}

// NewSearcher indexes the trajectories with k pivots each. All
// trajectories must share one dimensionality and have >= 2 points.
func NewSearcher(trajs []*Trajectory, k int) (*Searcher, error) {
	s := &Searcher{trajs: trajs, pivots: make([][]int, len(trajs)), mbrs: make([]*MBR, len(trajs))}
	for i, t := range trajs {
		if len(t.Points) < 2 {
			return nil, fmt.Errorf("ndim: trajectory %d has %d points, need >= 2", t.ID, len(t.Points))
		}
		d := len(t.Points[0])
		if s.dim == 0 {
			s.dim = d
		} else if d != s.dim {
			return nil, fmt.Errorf("ndim: trajectory %d has dimension %d, want %d", t.ID, d, s.dim)
		}
		s.pivots[i] = SelectPivots(t.Points, k)
		s.mbrs[i] = MBROf(t.Points)
	}
	return s, nil
}

// Result is one search answer.
type Result struct {
	Traj     *Trajectory
	Distance float64
}

// Stats counts the filter funnel.
type Stats struct {
	PrunedMBR  int
	PrunedPAMD int
	Verified   int
}

// Search returns all indexed trajectories within tau of q under
// d-dimensional DTW, ascending by id. stats may be nil.
func (s *Searcher) Search(q []Point, tau float64, stats *Stats) ([]Result, error) {
	if len(q) == 0 {
		return nil, nil
	}
	if len(q[0]) != s.dim && s.dim != 0 {
		return nil, fmt.Errorf("ndim: query dimension %d, index dimension %d", len(q[0]), s.dim)
	}
	var out []Result
	q1, qn := q[0], q[len(q)-1]
	for i, t := range s.trajs {
		// Endpoint bound against the whole-trajectory box: DTW includes
		// dist(t1,q1) and dist(tm,qn), each at least the box distance.
		if s.mbrs[i].MinDist(q1)+s.mbrs[i].MinDist(qn) > tau {
			if stats != nil {
				stats.PrunedMBR++
			}
			continue
		}
		if PAMD(t.Points, q, s.pivots[i]) > tau {
			if stats != nil {
				stats.PrunedPAMD++
			}
			continue
		}
		if stats != nil {
			stats.Verified++
		}
		if d, ok := DTWThreshold(t.Points, q, tau); ok {
			out = append(out, Result{Traj: t, Distance: d})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out, nil
}
