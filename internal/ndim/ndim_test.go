package ndim

import (
	"math"
	"math/rand"
	"testing"
)

func randTraj(rng *rand.Rand, n, d int) []Point {
	pts := make([]Point, n)
	base := make(Point, d)
	for i := range base {
		base[i] = rng.Float64() * 10
	}
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			base[j] += rng.NormFloat64()
			p[j] = base[j]
		}
		pts[i] = p
	}
	return pts
}

// The 3D DTW must agree with the 2D implementation on trajectories whose
// third coordinate is constant.
func TestDTWReducesTo2D(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		a2 := randTraj(rng, 2+rng.Intn(10), 2)
		b2 := randTraj(rng, 2+rng.Intn(10), 2)
		lift := func(ps []Point) []Point {
			out := make([]Point, len(ps))
			for i, p := range ps {
				out[i] = Point{p[0], p[1], 7.5} // constant extra axis
			}
			return out
		}
		if math.Abs(DTW(a2, b2)-DTW(lift(a2), lift(b2))) > 1e-9 {
			t.Fatal("constant third axis changed DTW")
		}
		if math.Abs(Frechet(a2, b2)-Frechet(lift(a2), lift(b2))) > 1e-9 {
			t.Fatal("constant third axis changed Frechet")
		}
	}
}

func TestDistBasics(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{1, 2, 2}
	if got := a.Dist(b); math.Abs(got-3) > 1e-12 {
		t.Errorf("Dist = %v, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	a.Dist(Point{1, 2})
}

func TestMBR3D(t *testing.T) {
	pts := []Point{{0, 0, 0}, {2, 4, 6}, {1, -1, 3}}
	m := MBROf(pts)
	for i, want := range []float64{0, -1, 0} {
		if m.Min[i] != want {
			t.Errorf("Min[%d] = %v, want %v", i, m.Min[i], want)
		}
	}
	for i, want := range []float64{2, 4, 6} {
		if m.Max[i] != want {
			t.Errorf("Max[%d] = %v, want %v", i, m.Max[i], want)
		}
	}
	if d := m.MinDist(Point{1, 1, 1}); d != 0 {
		t.Errorf("inside MinDist = %v", d)
	}
	if d := m.MinDist(Point{3, 4, 6}); math.Abs(d-1) > 1e-12 {
		t.Errorf("outside MinDist = %v, want 1", d)
	}
	if MBROf(nil) != nil {
		t.Error("empty MBROf should be nil")
	}
}

// PAMD must lower-bound DTW in any dimension.
func TestPAMDLowerBound3D(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		d := 2 + rng.Intn(4) // 2..5 dimensions
		a := randTraj(rng, 3+rng.Intn(10), d)
		b := randTraj(rng, 2+rng.Intn(10), d)
		pivots := SelectPivots(a, 1+rng.Intn(3))
		if PAMD(a, b, pivots) > DTW(a, b)+1e-9 {
			t.Fatalf("PAMD > DTW in dimension %d", d)
		}
	}
}

// Threshold DTW agrees with exact.
func TestDTWThreshold3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		a := randTraj(rng, 2+rng.Intn(10), 3)
		b := randTraj(rng, 2+rng.Intn(10), 3)
		exact := DTW(a, b)
		for _, tau := range []float64{exact * 0.5, exact * 1.5} {
			if math.Abs(exact-tau) < 1e-9 {
				continue
			}
			got, ok := DTWThreshold(a, b, tau)
			if want := exact <= tau; ok != want {
				t.Fatalf("threshold decision: exact=%v tau=%v ok=%v", exact, tau, ok)
			}
			if ok && math.Abs(got-exact) > 1e-9 {
				t.Fatalf("accepted value %v != exact %v", got, exact)
			}
		}
	}
}

// The searcher must equal brute force on 3D data.
func TestSearcherMatchesBruteForce3D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trajs := make([]*Trajectory, 150)
	for i := range trajs {
		trajs[i] = &Trajectory{ID: i, Points: randTraj(rng, 2+rng.Intn(12), 3)}
	}
	s, err := NewSearcher(trajs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 20; iter++ {
		q := randTraj(rng, 2+rng.Intn(12), 3)
		tau := rng.Float64() * 10
		var st Stats
		got, err := s.Search(q, tau, &st)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, tr := range trajs {
			if DTW(tr.Points, q) <= tau {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("got %d results, want %d (tau=%v)", len(got), want, tau)
		}
		if st.PrunedMBR+st.PrunedPAMD+st.Verified != len(trajs) {
			t.Fatalf("stats don't cover the dataset: %+v", st)
		}
	}
}

// The pivot filter must actually prune on separated 4D data.
func TestSearcherPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trajs := make([]*Trajectory, 200)
	for i := range trajs {
		pts := randTraj(rng, 8, 4)
		// Spread the clusters far apart in the 4th dimension.
		for _, p := range pts {
			p[3] += float64(i%20) * 100
		}
		trajs[i] = &Trajectory{ID: i, Points: pts}
	}
	s, err := NewSearcher(trajs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if _, err := s.Search(trajs[0].Points, 5, &st); err != nil {
		t.Fatal(err)
	}
	if st.Verified > 30 {
		t.Errorf("weak pruning: verified %d of 200", st.Verified)
	}
}

func TestSearcherErrors(t *testing.T) {
	if _, err := NewSearcher([]*Trajectory{{ID: 0, Points: []Point{{1, 2, 3}}}}, 2); err == nil {
		t.Error("single-point trajectory accepted")
	}
	mixed := []*Trajectory{
		{ID: 0, Points: []Point{{1, 2}, {3, 4}}},
		{ID: 1, Points: []Point{{1, 2, 3}, {4, 5, 6}}},
	}
	if _, err := NewSearcher(mixed, 2); err == nil {
		t.Error("mixed dimensions accepted")
	}
	s, err := NewSearcher([]*Trajectory{{ID: 0, Points: []Point{{1, 2, 3}, {4, 5, 6}}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Search([]Point{{1, 2}, {3, 4}}, 1, nil); err == nil {
		t.Error("wrong-dimension query accepted")
	}
	if got, err := s.Search(nil, 1, nil); err != nil || got != nil {
		t.Error("empty query should return nothing")
	}
}

func TestEDR3D(t *testing.T) {
	a := []Point{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}}
	b := []Point{{0, 0, 0.05}, {1, 1, 1.05}, {9, 9, 9}}
	if got := EDR(a, b, 0.1); got != 1 {
		t.Errorf("EDR = %v, want 1", got)
	}
	if got := EDR(nil, b, 0.1); got != 3 {
		t.Errorf("EDR(empty) = %v, want 3", got)
	}
}
