package sqlx

import (
	"fmt"
	"strconv"
	"strings"

	"dita/internal/geom"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	p.accept(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlx: trailing input at %q", p.peek().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKw consumes the next token when it is the given keyword
// (case-insensitive).
func (p *parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("sqlx: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

// accept consumes a punct token with exact text.
func (p *parser) accept(text string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == text {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("sqlx: expected %q, got %q", text, p.peek().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlx: expected identifier, got %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *parser) number() (float64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sqlx: expected number, got %q", t.text)
	}
	p.i++
	return strconv.ParseFloat(t.text, 64)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKw("CREATE"):
		if p.acceptKw("TABLE") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &CreateTable{Name: name}, nil
		}
		if p.acceptKw("INDEX") {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			table, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("USE"); err != nil {
				return nil, err
			}
			if err := p.expectKw("TRIE"); err != nil {
				return nil, err
			}
			return &CreateIndex{Name: name, Table: table}, nil
		}
		return nil, fmt.Errorf("sqlx: CREATE must be followed by TABLE or INDEX")
	case p.acceptKw("LOAD"):
		t := p.peek()
		if t.kind != tokString {
			return nil, fmt.Errorf("sqlx: LOAD expects a quoted path")
		}
		p.i++
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Load{Path: t.text, Table: table}, nil
	case p.acceptKw("SHOW"):
		if p.acceptKw("TABLES") {
			return &Show{What: "TABLES"}, nil
		}
		if p.acceptKw("INDEXES") {
			return &Show{What: "INDEXES"}, nil
		}
		return nil, fmt.Errorf("sqlx: SHOW must be followed by TABLES or INDEXES")
	case p.acceptKw("INSERT"):
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("VALUES"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		id, err := p.number()
		if err != nil {
			return nil, err
		}
		if id != float64(int(id)) {
			return nil, fmt.Errorf("sqlx: trajectory id must be an integer")
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		lit, err := p.trajOperand()
		if err != nil {
			return nil, err
		}
		if lit.Param {
			return nil, fmt.Errorf("sqlx: INSERT requires a TRAJECTORY literal")
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &Insert{Table: table, ID: int(id), Traj: lit}, nil
	case p.acceptKw("DROP"):
		if p.acceptKw("TABLE") {
			table, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Drop{Table: table}, nil
		}
		if p.acceptKw("INDEX") {
			if err := p.expectKw("ON"); err != nil {
				return nil, err
			}
			table, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &Drop{Table: table, IndexOnly: true}, nil
		}
		return nil, fmt.Errorf("sqlx: DROP must be followed by TABLE or INDEX ON")
	case p.acceptKw("EXPLAIN"):
		analyze := p.acceptKw("ANALYZE")
		if !p.acceptKw("SELECT") {
			if analyze {
				return nil, fmt.Errorf("sqlx: EXPLAIN ANALYZE supports only SELECT")
			}
			return nil, fmt.Errorf("sqlx: EXPLAIN supports only SELECT")
		}
		st, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: st.(*Select), Analyze: analyze}, nil
	case p.acceptKw("SELECT"):
		return p.selectStmt()
	}
	return nil, fmt.Errorf("sqlx: unrecognized statement start %q", p.peek().text)
}

func (p *parser) selectStmt() (Statement, error) {
	count := false
	if p.acceptKw("COUNT") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect("*"); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		count = true
	} else if err := p.expect("*"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &Select{Table: table, Limit: -1, Count: count}
	// TRA-KNN-JOIN (kNN join): ... TRA-KNN-JOIN Q USING DTW LIMIT k.
	if p.acceptKw("TRA-KNN-JOIN") || p.acceptKw("TRAKNNJOIN") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.JoinTable = jt
		s.KNNJoin = true
		if err := p.expectKw("USING"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.OrderBy = &Predicate{Measure: strings.ToUpper(name), LeftTable: table, RightTable: jt}
		if err := p.expectKw("LIMIT"); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if k < 1 || k != float64(int(k)) {
			return nil, fmt.Errorf("sqlx: LIMIT must be a positive integer")
		}
		s.Limit = int(k)
		return s, nil
	}
	// TRA-JOIN (also accepted: TRAJOIN).
	if p.acceptKw("TRA-JOIN") || p.acceptKw("TRAJOIN") {
		jt, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.JoinTable = jt
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		pred, err := p.predicate(true)
		if err != nil {
			return nil, err
		}
		s.Where = pred
		return s, nil
	}
	if p.acceptKw("WHERE") {
		pred, err := p.predicate(false)
		if err != nil {
			return nil, err
		}
		s.Where = pred
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		pred, err := p.knnPredicate()
		if err != nil {
			return nil, err
		}
		s.OrderBy = pred
		if err := p.expectKw("LIMIT"); err != nil {
			return nil, err
		}
		k, err := p.number()
		if err != nil {
			return nil, err
		}
		if k < 1 || k != float64(int(k)) {
			return nil, fmt.Errorf("sqlx: LIMIT must be a positive integer")
		}
		s.Limit = int(k)
	}
	return s, nil
}

// predicate parses f(T, rhs) <= tau. In join form the rhs must be a table
// alias; in search form a TRAJECTORY literal or '?'.
func (p *parser) predicate(join bool) (*Predicate, error) {
	pred, err := p.measureCall(join)
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.kind != tokPunct || (op.text != "<=" && op.text != "<") {
		return nil, fmt.Errorf("sqlx: expected <= after similarity function, got %q", op.text)
	}
	p.i++
	tau, err := p.number()
	if err != nil {
		return nil, err
	}
	pred.Tau = tau
	return pred, nil
}

func (p *parser) knnPredicate() (*Predicate, error) {
	return p.measureCall(false)
}

func (p *parser) measureCall(join bool) (*Predicate, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	pred := &Predicate{Measure: strings.ToUpper(name)}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	lt, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Optional .traj column suffix.
	if p.accept(".") {
		if _, err := p.ident(); err != nil {
			return nil, err
		}
	}
	pred.LeftTable = lt
	if err := p.expect(","); err != nil {
		return nil, err
	}
	if join {
		rt, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.accept(".") {
			if _, err := p.ident(); err != nil {
				return nil, err
			}
		}
		pred.RightTable = rt
	} else {
		lit, err := p.trajOperand()
		if err != nil {
			return nil, err
		}
		pred.RightTraj = lit
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return pred, nil
}

// trajOperand parses TRAJECTORY((x y), (x y), ...) or '?'.
func (p *parser) trajOperand() (*TrajLiteral, error) {
	if p.accept("?") {
		return &TrajLiteral{Param: true}, nil
	}
	if !p.acceptKw("TRAJECTORY") {
		return nil, fmt.Errorf("sqlx: expected TRAJECTORY literal or ?, got %q", p.peek().text)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var pts []geom.Point
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		y, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		pts = append(pts, geom.Point{X: x, Y: y})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(pts) < 2 {
		return nil, fmt.Errorf("sqlx: TRAJECTORY literal needs at least 2 points")
	}
	return &TrajLiteral{Points: pts}, nil
}
