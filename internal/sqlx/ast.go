package sqlx

import "dita/internal/geom"

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable is CREATE TABLE name.
type CreateTable struct {
	Name string
}

// Load is LOAD 'file.csv' INTO name.
type Load struct {
	Path  string
	Table string
}

// CreateIndex is CREATE INDEX idx ON table USE TRIE.
type CreateIndex struct {
	Name  string
	Table string
}

// TrajLiteral is TRAJECTORY((x y), (x y), ...) or a ? parameter.
type TrajLiteral struct {
	Points []geom.Point
	Param  bool // true for '?'
}

// Predicate is f(T, Q) <= tau with f a measure name.
type Predicate struct {
	Measure string
	// LeftTable is the table alias on the measure's first argument.
	LeftTable string
	// Right is either a table alias (joins) or a literal/param (search).
	RightTable string
	RightTraj  *TrajLiteral
	Tau        float64
}

// Select is the unified search / join / kNN statement.
type Select struct {
	// Table is the FROM table.
	Table string
	// JoinTable is set for TRA-JOIN queries.
	JoinTable string
	// Where is the similarity predicate (search and join).
	Where *Predicate
	// OrderBy + Limit express kNN: ORDER BY f(T, Q) LIMIT k.
	OrderBy *Predicate // Tau unused
	Limit   int
	// Count marks a SELECT COUNT(*) projection: only the row count is
	// returned.
	Count bool
	// KNNJoin marks a TRA-KNN-JOIN: for every left trajectory, the Limit
	// nearest right trajectories under the OrderBy measure.
	KNNJoin bool
}

// Insert is INSERT INTO table VALUES (id, TRAJECTORY(...)). Inserting
// invalidates the table's built engines (the index is rebuilt lazily).
type Insert struct {
	Table string
	ID    int
	Traj  *TrajLiteral
}

// Drop is DROP TABLE name or DROP INDEX ON name.
type Drop struct {
	Table string
	// IndexOnly drops just the index, keeping the data.
	IndexOnly bool
}

// Explain is EXPLAIN SELECT ...: plan the statement without executing it.
// With Analyze set (EXPLAIN ANALYZE SELECT ...), the statement executes
// and the result carries the plan plus actual pruning-funnel counts and
// wall-clock time instead of the rows.
type Explain struct {
	Stmt    *Select
	Analyze bool
}

// Show is SHOW TABLES / SHOW INDEXES.
type Show struct {
	What string // "TABLES" or "INDEXES"
}

func (*CreateTable) stmt() {}
func (*Load) stmt()        {}
func (*CreateIndex) stmt() {}
func (*Select) stmt()      {}
func (*Show) stmt()        {}
func (*Explain) stmt()     {}
func (*Insert) stmt()      {}
func (*Drop) stmt()        {}
