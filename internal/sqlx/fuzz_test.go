package sqlx

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input: the parser
// must never panic, and any statement it accepts must round-trip through
// the executor's statement dispatch without crashing. Run the corpus as a
// plain test with `go test`, or fuzz with `go test -fuzz=FuzzParse`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE t",
		"CREATE INDEX i ON t USE TRIE",
		"LOAD 'x.csv' INTO t",
		"SELECT * FROM t",
		"SELECT * FROM t WHERE DTW(t, ?) <= 0.005",
		"SELECT * FROM t WHERE DTW(t, TRAJECTORY((1 1), (2 2))) <= 0.5",
		"SELECT * FROM t TRA-JOIN q ON FRECHET(t, q) <= 0.1",
		"SELECT * FROM t ORDER BY EDR(t, ?) LIMIT 3",
		"SHOW TABLES",
		"sElEcT * fRoM t WhErE lcss(t, ?) <= 2;",
		"SELECT * FROM t WHERE DTW(t, TRAJECTORY((1 1)",
		"'unterminated",
		"CREATE",
		"TRAJECTORY",
		"((((((((",
		"SELECT * FROM t WHERE DTW(t, ?) <= 1e309",
		"SELECT * FROM été WHERE DTW(été, ?) <= 1",
		"-- just a comment",
		"LOAD '\x00' INTO t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 4096 {
			return // keep fuzzing fast; the grammar has no length-dependent paths
		}
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("Parse(%q) returned nil statement and nil error", input)
		}
		// Accepted statements must carry sane invariants.
		switch s := st.(type) {
		case *Select:
			if s.Table == "" {
				t.Fatalf("Parse(%q): SELECT without table", input)
			}
			if s.JoinTable != "" && s.Where == nil {
				t.Fatalf("Parse(%q): join without predicate", input)
			}
			if s.OrderBy != nil && s.Limit < 1 {
				t.Fatalf("Parse(%q): ORDER BY without positive LIMIT", input)
			}
			if s.Where != nil && s.Where.Measure == "" {
				t.Fatalf("Parse(%q): predicate without measure", input)
			}
		case *CreateIndex:
			if s.Table == "" || s.Name == "" {
				t.Fatalf("Parse(%q): CREATE INDEX missing fields", input)
			}
		case *Load:
			if s.Table == "" {
				t.Fatalf("Parse(%q): LOAD missing table", input)
			}
		case *CreateTable:
			if s.Name == "" {
				t.Fatalf("Parse(%q): CREATE TABLE missing name", input)
			}
		case *Show:
			if s.What != "TABLES" && s.What != "INDEXES" {
				t.Fatalf("Parse(%q): SHOW %q", input, s.What)
			}
		}
	})
}

// FuzzLexer checks the tokenizer in isolation: no panics and monotone
// token positions.
func FuzzLexer(f *testing.F) {
	f.Add("SELECT * FROM t -- c\n'str' 1.5e-3 <= >= ( ) , ? ; .")
	f.Add("\x00\xff\xfe")
	f.Add(strings.Repeat("(", 100))
	f.Fuzz(func(t *testing.T, input string) {
		toks, err := lex(input)
		if err != nil {
			return
		}
		last := -1
		for _, tok := range toks {
			if tok.pos < last {
				t.Fatalf("token positions not monotone in %q", input)
			}
			last = tok.pos
		}
		if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("lex(%q) missing EOF token", input)
		}
	})
}
