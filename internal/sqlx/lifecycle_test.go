package sqlx

import (
	"context"
	"errors"
	"testing"
	"time"

	"dita/internal/admit"
)

// A cancelled context aborts a SELECT before it runs.
func TestExecContextPreCancelled(t *testing.T) {
	db, d := newTestDB(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// DDL is not gated by query lifecycle concerns beyond the statement
	// switch; the same DB still executes normally afterwards.
	if _, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0]); err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
}

// A deadline interrupts a full scan mid-flight (no index: the scan checks
// the context between trajectories).
func TestExecContextDeadlineInterruptsScan(t *testing.T) {
	db, d := newTestDB(t, 3000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	start := time.Now()
	_, err := db.ExecContext(ctx, "SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired scan took %v", elapsed)
	}
}

// Admission control on the DB: with MaxConcurrent=1 and no queue, a
// SELECT arriving while the slot is held is rejected with ErrOverloaded;
// EXPLAIN and DDL stay exempt. The slot is held directly through the
// controller (the same gate execSelect acquires) so the test is
// deterministic regardless of how fast a real query would finish.
func TestDBAdmissionOverload(t *testing.T) {
	db, d := newTestDB(t, 100)
	db.SetAdmission(admit.Policy{MaxConcurrent: 1, MaxQueue: 0})

	release, err := db.adm.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	_, err = db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("query at capacity: err = %v, want ErrOverloaded", err)
	}
	// EXPLAIN is free: it only plans, so it must not be rejected.
	if _, err := db.Exec("EXPLAIN SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0]); err != nil {
		t.Fatalf("EXPLAIN rejected under load: %v", err)
	}
	// DDL is free too.
	if _, err := db.Exec("SHOW TABLES"); err != nil {
		t.Fatalf("SHOW TABLES rejected under load: %v", err)
	}

	release()
	// Slot released: the DB admits queries again.
	if _, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0]); err != nil {
		t.Fatalf("post-release query: %v", err)
	}
}

// Indexed searches pass the context into the engine: a cancelled context
// aborts even when a trie index serves the query.
func TestExecContextCancelledIndexedSearch(t *testing.T) {
	db, d := newTestDB(t, 200)
	if _, err := db.Exec("CREATE INDEX TrieIndex ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "SELECT * FROM T WHERE DTW(T, ?) <= 0.01", d.Trajs[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("indexed search err = %v, want context.Canceled", err)
	}
}
