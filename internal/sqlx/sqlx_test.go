package sqlx

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

func newTestDB(t *testing.T, n int) (*DB, *traj.Dataset) {
	t.Helper()
	d := gen.Generate(gen.BeijingLike(n, 1))
	opts := core.DefaultOptions()
	opts.NG = 3
	db := NewDB(nil, opts)
	db.Register("T", d)
	return db, d
}

func TestParseStatements(t *testing.T) {
	good := []string{
		"CREATE TABLE trips",
		"LOAD 'data.csv' INTO trips",
		"CREATE INDEX TrieIndex ON trips USE TRIE",
		"SELECT * FROM trips",
		"SELECT * FROM trips WHERE DTW(trips, ?) <= 0.005",
		"SELECT * FROM T WHERE DTW(T, TRAJECTORY((1 1), (2 2), (3 3))) <= 0.5;",
		"SELECT * FROM T WHERE frechet(T.traj, ?) <= 0.01",
		"SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= 0.005",
		"SELECT * FROM T TRAJOIN Q ON EDR(T.traj, Q.traj) <= 3",
		"SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 5",
		"SHOW TABLES",
		"SHOW INDEXES",
		"select * from t where dtw(t, ?) <= 1 -- comment",
		"INSERT INTO t VALUES (7, TRAJECTORY((1 1), (2 2)))",
		"DROP TABLE t",
		"DROP INDEX ON t",
	}
	for _, q := range good {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
	bad := []string{
		"",
		"DROP x",
		"DROP INDEX x",
		"INSERT INTO t VALUES (1.5, TRAJECTORY((1 1), (2 2)))",
		"INSERT INTO t VALUES (1, ?)",
		"SELECT FROM T",
		"SELECT * FROM",
		"SELECT * FROM T WHERE DTW(T) <= 1",
		"SELECT * FROM T WHERE DTW(T, ?) >= 1",
		"SELECT * FROM T WHERE DTW(T, ?)",
		"SELECT * FROM T TRA-JOIN Q",
		"SELECT * FROM T ORDER BY DTW(T, ?)",
		"SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 0",
		"SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 2.5",
		"SELECT * FROM T WHERE DTW(T, TRAJECTORY((1 1))) <= 1",
		"CREATE INDEX i ON t USE RTREE",
		"LOAD data.csv INTO t",
		"SELECT * FROM T WHERE DTW(T, ?) <= 1 garbage",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestSQLSearchMatchesBruteForce(t *testing.T) {
	db, d := newTestDB(t, 300)
	q := gen.Queries(d, 1, 2)[0]
	tau := 0.05
	want := 0
	for _, tr := range d.Trajs {
		if (measure.DTW{}).Distance(tr.Points, q.Points) <= tau {
			want++
		}
	}
	// Unindexed: full scan plan.
	res, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.05", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajs) != want {
		t.Fatalf("full scan: %d results, want %d", len(res.Trajs), want)
	}
	if !strings.Contains(res.Plan, "FullScan") {
		t.Errorf("plan = %q, want FullScan before CREATE INDEX", res.Plan)
	}
	// Indexed: trie plan, same answers.
	if _, err := db.Exec("CREATE INDEX TrieIndex ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	res2, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.05", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trajs) != want {
		t.Fatalf("index scan: %d results, want %d", len(res2.Trajs), want)
	}
	if !strings.Contains(res2.Plan, "TrieIndexSearch") {
		t.Errorf("plan = %q, want TrieIndexSearch after CREATE INDEX", res2.Plan)
	}
}

func TestSQLTrajectoryLiteral(t *testing.T) {
	db, d := newTestDB(t, 100)
	q := d.Trajs[0]
	var sb strings.Builder
	sb.WriteString("SELECT * FROM T WHERE DTW(T, TRAJECTORY(")
	for i, p := range q.Points {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%.10f %.10f)", p.X, p.Y)
	}
	sb.WriteString(")) <= 0.0001")
	res, err := db.Exec(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Trajs {
		if r.Traj.ID == q.ID {
			found = true
		}
	}
	if !found {
		t.Error("literal self-query did not find the source trajectory")
	}
}

func TestSQLJoin(t *testing.T) {
	db, d := newTestDB(t, 120)
	d2 := gen.Generate(gen.BeijingLike(100, 5))
	for _, tr := range d2.Trajs {
		tr.ID += 10000
	}
	db.Register("Q", d2)
	res, err := db.Exec("SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= 0.04")
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, a := range d.Trajs {
		for _, b := range d2.Trajs {
			if (measure.DTW{}).Distance(a.Points, b.Points) <= 0.04 {
				want++
			}
		}
	}
	if len(res.Pairs) != want {
		t.Fatalf("join: %d pairs, want %d", len(res.Pairs), want)
	}
}

func TestSQLKNN(t *testing.T) {
	db, d := newTestDB(t, 150)
	q := gen.Queries(d, 1, 6)[0]
	res, err := db.Exec("SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 7", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajs) != 7 {
		t.Fatalf("kNN returned %d, want 7", len(res.Trajs))
	}
	if res.Trajs[0].Traj.ID != q.ID {
		t.Errorf("nearest neighbor of a member should be itself, got %d", res.Trajs[0].Traj.ID)
	}
}

func TestSQLDDLAndShow(t *testing.T) {
	db, _ := newTestDB(t, 50)
	if _, err := db.Exec("CREATE TABLE extra"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SHOW TABLES")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("SHOW TABLES: %v", res.Tables)
	}
	if _, err := db.Exec("CREATE INDEX i ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("SHOW INDEXES")
	if err != nil || len(res.Tables) != 1 {
		t.Fatalf("SHOW INDEXES: %v %v", res.Tables, err)
	}
}

func TestSQLLoad(t *testing.T) {
	db, d := newTestDB(t, 30)
	dir := t.TempDir()
	path := filepath.Join(dir, "trips.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traj.WriteCSV(f, d); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res, err := db.Exec("LOAD '" + path + "' INTO loaded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "30") {
		t.Errorf("load message: %q", res.Message)
	}
	df, err := db.Table("loaded")
	if err != nil || df.Count() != 30 {
		t.Fatalf("loaded table: %v, %d", err, df.Count())
	}
}

func TestSQLErrors(t *testing.T) {
	db, _ := newTestDB(t, 20)
	cases := []string{
		"SELECT * FROM nosuch WHERE DTW(nosuch, ?) <= 1",
		"SELECT * FROM T WHERE HAUSDORFF(T, ?) <= 1",
		"LOAD '/nonexistent/file.csv' INTO x",
		"SELECT * FROM T TRA-JOIN nosuch ON DTW(T, nosuch) <= 1",
	}
	for _, c := range cases {
		if _, err := db.Exec(c, nil); err == nil {
			t.Errorf("Exec(%q) should fail", c)
		}
	}
	// Missing parameter.
	if _, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 1"); err == nil {
		t.Error("missing parameter accepted")
	}
}

func TestDataFrameAPI(t *testing.T) {
	db, d := newTestDB(t, 200)
	df, err := db.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	if df.Count() != 200 || df.Name() != "T" || len(df.Collect()) != 200 {
		t.Fatal("basic accessors broken")
	}
	if err := df.CreateTrieIndex(); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 7)[0]
	res, err := df.SimilaritySearch(q, "DTW", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tr := range d.Trajs {
		if (measure.DTW{}).Distance(tr.Points, q.Points) <= 0.05 {
			want++
		}
	}
	if len(res) != want {
		t.Fatalf("DataFrame search: %d, want %d", len(res), want)
	}
	knn, err := df.KNN(q, "DTW", 3)
	if err != nil || len(knn) != 3 {
		t.Fatalf("DataFrame KNN: %v %d", err, len(knn))
	}
	d2 := gen.Generate(gen.BeijingLike(80, 8))
	for _, tr := range d2.Trajs {
		tr.ID += 10000
	}
	db.Register("J", d2)
	df2, _ := db.Table("J")
	pairs, err := df.SimilarityJoin(df2, "DTW", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 0
	for _, a := range d.Trajs {
		for _, b := range d2.Trajs {
			if (measure.DTW{}).Distance(a.Points, b.Points) <= 0.03 {
				wantPairs++
			}
		}
	}
	if len(pairs) != wantPairs {
		t.Fatalf("DataFrame join: %d, want %d", len(pairs), wantPairs)
	}
	if _, err := df.SimilaritySearch(q, "bogus", 1); err == nil {
		t.Error("bogus measure accepted")
	}
}

func TestExplain(t *testing.T) {
	db, _ := newTestDB(t, 40)
	// Unindexed: full scan plan; EXPLAIN must not execute.
	res, err := db.Exec("EXPLAIN SELECT * FROM T WHERE DTW(T, ?) <= 0.01", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "FullScanFilter") || res.Trajs != nil {
		t.Errorf("explain = %+v", res)
	}
	if _, err := db.Exec("CREATE INDEX i ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("EXPLAIN SELECT * FROM T WHERE DTW(T, ?) <= 0.01", nil)
	if err != nil || !strings.Contains(res.Plan, "TrieIndexSearch") {
		t.Errorf("explain after index: %v %+v", err, res)
	}
	res, err = db.Exec("EXPLAIN SELECT * FROM T TRA-JOIN T ON DTW(T, T) <= 0.01")
	if err != nil || !strings.Contains(res.Plan, "TrieIndexJoin") || res.Pairs != nil {
		t.Errorf("explain join: %v %+v", err, res)
	}
	res, err = db.Exec("EXPLAIN SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 2", nil)
	if err != nil || !strings.Contains(res.Plan, "KNNIndexSearch") {
		t.Errorf("explain knn: %v %+v", err, res)
	}
	res, err = db.Exec("EXPLAIN SELECT * FROM T")
	if err != nil || !strings.Contains(res.Plan, "FullScan(") {
		t.Errorf("explain scan: %v %+v", err, res)
	}
	if _, err := db.Exec("EXPLAIN SHOW TABLES"); err == nil {
		t.Error("EXPLAIN of non-SELECT accepted")
	}
}

func TestExplainAnalyze(t *testing.T) {
	db, d := newTestDB(t, 200)
	q := gen.Queries(d, 1, 3)[0]
	tau := 0.05
	want := 0
	for _, tr := range d.Trajs {
		if (measure.DTW{}).Distance(tr.Points, q.Points) <= tau {
			want++
		}
	}
	check := func(res *Result, err error, plan string) *AnalyzeReport {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if res.Analyze == nil {
			t.Fatalf("EXPLAIN ANALYZE returned no report: %+v", res)
		}
		if res.Trajs != nil || res.Pairs != nil {
			t.Errorf("EXPLAIN ANALYZE leaked rows: %+v", res)
		}
		if !strings.Contains(res.Analyze.Plan, plan) {
			t.Errorf("plan = %q, want %q", res.Analyze.Plan, plan)
		}
		if !res.Analyze.Funnel.Monotone() {
			t.Errorf("funnel not monotone: %+v", res.Analyze.Funnel)
		}
		if res.Analyze.Elapsed <= 0 {
			t.Errorf("elapsed = %v, want > 0", res.Analyze.Elapsed)
		}
		return res.Analyze
	}

	// Unindexed: the fallback scan verifies everything.
	res, err := db.Exec("EXPLAIN ANALYZE SELECT * FROM T WHERE DTW(T, ?) <= 0.05", q)
	an := check(res, err, "FullScanFilter")
	if an.Rows != want || res.Count != want {
		t.Errorf("full scan analyze rows = %d (count %d), want %d", an.Rows, res.Count, want)
	}
	if an.Funnel.Considered != 200 || an.Funnel.Verified != 200 || an.Funnel.Matched != int64(want) {
		t.Errorf("full scan funnel = %+v, want flat 200 → %d", an.Funnel, want)
	}

	// Indexed: the engine's real funnel, same answer, fewer verifications.
	if _, err := db.Exec("CREATE INDEX i ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec("EXPLAIN ANALYZE SELECT * FROM T WHERE DTW(T, ?) <= 0.05", q)
	an = check(res, err, "TrieIndexSearch")
	if an.Rows != want || an.Funnel.Matched != int64(want) {
		t.Errorf("index analyze rows=%d matched=%d, want %d", an.Rows, an.Funnel.Matched, want)
	}
	if an.Funnel.Relevant == 0 || an.Funnel.Considered == 0 {
		t.Errorf("index funnel missing stages: %+v", an.Funnel)
	}

	// Join: funnel from JoinStats; Matched must equal the pair count.
	res, err = db.Exec("EXPLAIN ANALYZE SELECT * FROM T TRA-JOIN T ON DTW(T, T) <= 0.01")
	an = check(res, err, "TrieIndexJoin")
	if an.Funnel.Matched != int64(an.Rows) || res.Count != an.Rows {
		t.Errorf("join analyze matched=%d rows=%d count=%d", an.Funnel.Matched, an.Rows, res.Count)
	}

	// kNN: exactly k rows out.
	res, err = db.Exec("EXPLAIN ANALYZE SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 3", q)
	an = check(res, err, "KNNIndexSearch")
	if an.Rows != 3 {
		t.Errorf("knn analyze rows = %d, want 3", an.Rows)
	}

	// Bare scan: flat funnel over the whole table.
	res, err = db.Exec("EXPLAIN ANALYZE SELECT * FROM T")
	an = check(res, err, "FullScan(")
	if an.Rows != 200 || an.Funnel.Matched != 200 {
		t.Errorf("scan analyze = %+v", an)
	}

	// Plain EXPLAIN still does not execute.
	res, err = db.Exec("EXPLAIN SELECT * FROM T WHERE DTW(T, ?) <= 0.05", q)
	if err != nil || res.Analyze != nil {
		t.Errorf("plain EXPLAIN gained a report: %v %+v", err, res)
	}
	if _, err := db.Exec("EXPLAIN ANALYZE SHOW TABLES"); err == nil {
		t.Error("EXPLAIN ANALYZE of non-SELECT accepted")
	}
}

func TestSQLCount(t *testing.T) {
	db, d := newTestDB(t, 80)
	res, err := db.Exec("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 80 || res.Trajs != nil {
		t.Errorf("COUNT(*) = %d, trajs=%v", res.Count, res.Trajs)
	}
	q := d.Trajs[0]
	full, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.01", q)
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := db.Exec("SELECT COUNT(*) FROM T WHERE DTW(T, ?) <= 0.01", q)
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Count != len(full.Trajs) || cnt.Trajs != nil {
		t.Errorf("filtered COUNT = %d, want %d", cnt.Count, len(full.Trajs))
	}
	// Join count.
	db.Register("Q2", d)
	jc, err := db.Exec("SELECT COUNT(*) FROM T TRA-JOIN Q2 ON DTW(T, Q2) <= 0.001")
	if err != nil {
		t.Fatal(err)
	}
	if jc.Count < 80 || jc.Pairs != nil {
		t.Errorf("join COUNT = %d (want >= 80 self pairs)", jc.Count)
	}
	// Malformed COUNT forms.
	for _, bad := range []string{"SELECT COUNT(x) FROM T", "SELECT COUNT FROM T", "SELECT COUNT(*) T"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestSQLInsertAndDrop(t *testing.T) {
	db, d := newTestDB(t, 50)
	if _, err := db.Exec("CREATE INDEX i ON T USE TRIE"); err != nil {
		t.Fatal(err)
	}
	// Insert a new trajectory; the next search must see it.
	if _, err := db.Exec("INSERT INTO T VALUES (999999, TRAJECTORY((116.3 39.9), (116.31 39.91), (116.32 39.92)))"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM T")
	if err != nil || res.Count != 51 {
		t.Fatalf("count after insert: %v %d", err, res.Count)
	}
	q := &traj.T{ID: -1, Points: []geom.Point{{X: 116.3, Y: 39.9}, {X: 116.31, Y: 39.91}, {X: 116.32, Y: 39.92}}}
	hits, err := db.Exec("SELECT * FROM T WHERE DTW(T, ?) <= 0.0001", q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range hits.Trajs {
		if r.Traj.ID == 999999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted trajectory not found by indexed search")
	}
	// Duplicate id rejected.
	if _, err := db.Exec("INSERT INTO T VALUES (999999, TRAJECTORY((1 1), (2 2)))"); err == nil {
		t.Error("duplicate id accepted")
	}
	// Too-short literal rejected by validation at parse or insert time.
	if _, err := db.Exec("INSERT INTO T VALUES (5, TRAJECTORY((1 1)))"); err == nil {
		t.Error("single-point trajectory accepted")
	}
	// DROP INDEX flips the plan back to a full scan.
	if _, err := db.Exec("DROP INDEX ON T"); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Exec("EXPLAIN SELECT * FROM T WHERE DTW(T, ?) <= 0.01")
	if err != nil || !strings.Contains(plan.Plan, "FullScanFilter") {
		t.Errorf("plan after DROP INDEX: %v %q", err, plan.Plan)
	}
	// DROP TABLE removes the catalog entry.
	if _, err := db.Exec("DROP TABLE T"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("SELECT COUNT(*) FROM T"); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec("DROP TABLE nosuch"); err == nil {
		t.Error("dropping unknown table accepted")
	}
	_ = d
}

func TestSQLKNNJoin(t *testing.T) {
	db, d := newTestDB(t, 60)
	d2 := gen.Generate(gen.BeijingLike(50, 9))
	for _, tr := range d2.Trajs {
		tr.ID += 10000
	}
	db.Register("R", d2)
	res, err := db.Exec("SELECT * FROM T TRA-KNN-JOIN R USING DTW LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2*d.Len() {
		t.Fatalf("kNN join returned %d pairs, want %d", len(res.Pairs), 2*d.Len())
	}
	// Each left trajectory's 2 nearest must match brute force.
	byLeft := map[int][]int{}
	for _, p := range res.Pairs {
		byLeft[p.T.ID] = append(byLeft[p.T.ID], p.Q.ID)
	}
	m := measure.DTW{}
	for _, tr := range d.Trajs[:10] { // spot check
		type dr struct {
			id int
			d  float64
		}
		var ds []dr
		for _, q := range d2.Trajs {
			ds = append(ds, dr{q.ID, m.Distance(tr.Points, q.Points)})
		}
		sort.Slice(ds, func(a, b int) bool {
			if ds[a].d != ds[b].d {
				return ds[a].d < ds[b].d
			}
			return ds[a].id < ds[b].id
		})
		got := byLeft[tr.ID]
		if got[0] != ds[0].id || got[1] != ds[1].id {
			t.Fatalf("traj %d neighbors %v, want [%d %d]", tr.ID, got, ds[0].id, ds[1].id)
		}
	}
	// EXPLAIN path.
	plan, err := db.Exec("EXPLAIN SELECT * FROM T TRA-KNN-JOIN R USING DTW LIMIT 2")
	if err != nil || !strings.Contains(plan.Plan, "KNNIndexJoin") {
		t.Errorf("explain knn join: %v %+v", err, plan)
	}
	// Bad forms.
	for _, bad := range []string{
		"SELECT * FROM T TRA-KNN-JOIN R USING DTW",
		"SELECT * FROM T TRA-KNN-JOIN R LIMIT 2",
		"SELECT * FROM T TRA-KNN-JOIN R USING DTW LIMIT 0",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
	// DataFrame equivalent.
	dfT, _ := db.Table("T")
	dfR, _ := db.Table("R")
	nn, err := dfT.KNNJoin(dfR, "DTW", 2)
	if err != nil || len(nn) != d.Len() {
		t.Fatalf("DataFrame KNNJoin: %v, %d", err, len(nn))
	}
}
