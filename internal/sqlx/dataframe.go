package sqlx

import (
	"fmt"

	"dita/internal/core"
	"dita/internal/traj"
)

// DataFrame is the procedural companion to the SQL dialect (the paper's
// DataFrame API, Section 3): a handle on a registered table supporting
// trajectory similarity operators. All operations share the DB's engines,
// so an index built through SQL benefits DataFrame calls and vice versa.
type DataFrame struct {
	db *DB
	t  *table
}

// Table returns a DataFrame over a registered table.
func (db *DB) Table(name string) (*DataFrame, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	return &DataFrame{db: db, t: t}, nil
}

// Name returns the underlying table name.
func (df *DataFrame) Name() string { return df.t.name }

// Count returns the number of trajectories.
func (df *DataFrame) Count() int { return df.t.data.Len() }

// Collect returns the table's trajectories.
func (df *DataFrame) Collect() []*traj.T { return df.t.data.Trajs }

// CreateTrieIndex builds the DITA index (CREATE INDEX ... USE TRIE).
func (df *DataFrame) CreateTrieIndex() error {
	_, err := df.db.Execute(&CreateIndex{Name: df.t.name + "_trie", Table: df.t.name})
	return err
}

// SimilaritySearch returns trajectories within tau of q under the named
// measure.
func (df *DataFrame) SimilaritySearch(q *traj.T, measureName string, tau float64) ([]core.SearchResult, error) {
	m, err := df.db.measureFor(measureName)
	if err != nil {
		return nil, err
	}
	df.db.mu.Lock()
	defer df.db.mu.Unlock()
	e, err := df.db.engineLocked(df.t, m)
	if err != nil {
		return nil, err
	}
	return e.Search(q, tau, nil), nil
}

// SimilarityJoin returns pairs (t, q) with t from df, q from other, within
// tau under the named measure.
func (df *DataFrame) SimilarityJoin(other *DataFrame, measureName string, tau float64) ([]core.Pair, error) {
	if df.db != other.db {
		return nil, fmt.Errorf("sqlx: cannot join tables from different contexts")
	}
	m, err := df.db.measureFor(measureName)
	if err != nil {
		return nil, err
	}
	df.db.mu.Lock()
	defer df.db.mu.Unlock()
	e1, err := df.db.engineLocked(df.t, m)
	if err != nil {
		return nil, err
	}
	e2, err := df.db.engineLocked(other.t, m)
	if err != nil {
		return nil, err
	}
	return e1.Join(e2, tau, core.DefaultJoinOptions(), nil), nil
}

// KNNJoin returns, for every trajectory of df, its k nearest neighbors in
// other under the named measure.
func (df *DataFrame) KNNJoin(other *DataFrame, measureName string, k int) (map[int][]core.SearchResult, error) {
	if df.db != other.db {
		return nil, fmt.Errorf("sqlx: cannot join tables from different contexts")
	}
	m, err := df.db.measureFor(measureName)
	if err != nil {
		return nil, err
	}
	df.db.mu.Lock()
	defer df.db.mu.Unlock()
	e1, err := df.db.engineLocked(df.t, m)
	if err != nil {
		return nil, err
	}
	e2, err := df.db.engineLocked(other.t, m)
	if err != nil {
		return nil, err
	}
	return e1.KNNJoin(e2, k)
}

// KNN returns the k nearest trajectories to q under the named measure.
func (df *DataFrame) KNN(q *traj.T, measureName string, k int) ([]core.SearchResult, error) {
	m, err := df.db.measureFor(measureName)
	if err != nil {
		return nil, err
	}
	df.db.mu.Lock()
	defer df.db.mu.Unlock()
	e, err := df.db.engineLocked(df.t, m)
	if err != nil {
		return nil, err
	}
	return e.SearchKNN(q, k), nil
}
