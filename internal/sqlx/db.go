package sqlx

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dita/internal/admit"
	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/traj"
)

// ErrOverloaded is returned by Exec/ExecContext when the admission
// controller is saturated (see SetAdmission).
var ErrOverloaded = admit.ErrOverloaded

// DB is the catalog and execution context: named tables, their optional
// trie indexes (one engine per table and measure), and the shared cluster.
type DB struct {
	cl   *cluster.Cluster
	opts core.Options

	// Eps and Delta configure edit-based measures named in queries.
	Eps   float64
	Delta int

	// adm gates SELECT execution; nil admits everything.
	adm *admit.Controller

	mu     sync.Mutex
	tables map[string]*table
}

type table struct {
	name    string
	data    *traj.Dataset
	indexed bool
	idxName string
	// engines caches one built engine per measure name.
	engines map[string]*core.Engine
}

// NewDB creates a context on the given cluster (a default 4-worker cluster
// when nil) using the engine options as a template for CREATE INDEX.
func NewDB(cl *cluster.Cluster, opts core.Options) *DB {
	if cl == nil {
		cl = cluster.New(cluster.DefaultConfig(4))
	}
	opts.Cluster = cl
	if opts.NG < 1 {
		opts.NG = core.DefaultOptions().NG
	}
	return &DB{cl: cl, opts: opts, Eps: 0.001, Delta: 5, tables: map[string]*table{}}
}

// Cluster returns the execution substrate.
func (db *DB) Cluster() *cluster.Cluster { return db.cl }

// SetAdmission installs (or, with a zero policy, removes) admission
// control over SELECT execution: at most MaxConcurrent queries run at
// once, MaxQueue more wait up to QueueTimeout, and the rest fail fast
// with ErrOverloaded. DDL and EXPLAIN are never gated.
func (db *DB) SetAdmission(p admit.Policy) { db.adm = admit.New(p) }

// Register adds (or replaces) a table backed by the dataset.
func (db *DB) Register(name string, d *traj.Dataset) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[strings.ToLower(name)] = &table{name: name, data: d, engines: map[string]*core.Engine{}}
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqlx: unknown table %q", name)
	}
	return t, nil
}

// Result is the outcome of Exec: exactly one of the fields is populated
// depending on the statement kind.
type Result struct {
	// Message reports DDL outcomes.
	Message string
	// Trajs holds search / kNN answers.
	Trajs []core.SearchResult
	// Pairs holds join answers.
	Pairs []core.Pair
	// Tables holds SHOW output rows.
	Tables []string
	// Plan describes the chosen physical plan.
	Plan string
	// Count is the row/pair count for SELECT COUNT(*) queries (and is
	// also filled for ordinary SELECTs).
	Count int
	// Analyze is the EXPLAIN ANALYZE report: the executed plan's pruning
	// funnel and wall-clock time. Nil for every other statement.
	Analyze *AnalyzeReport
}

// AnalyzeReport is the EXPLAIN ANALYZE output: the physical plan that
// actually ran, the pruning funnel it produced, the row count, and the
// wall-clock execution time (admission wait excluded).
type AnalyzeReport struct {
	Plan   string
	Funnel obs.Funnel
	Rows   int
	// Parallelism is the engine's resolved verification fan-out (0 when
	// the plan never touched an engine, e.g. a full scan).
	Parallelism int
	Elapsed     time.Duration
}

// String renders the report in EXPLAIN ANALYZE style, one line of plan
// and one line of funnel.
func (a *AnalyzeReport) String() string {
	return fmt.Sprintf(
		"%s (actual rows=%d time=%s parallelism=%d)\n  funnel: partitions=%d relevant=%d considered=%d trie=%d length=%d coverage=%d verified=%d matched=%d",
		a.Plan, a.Rows, a.Elapsed.Round(time.Microsecond), a.Parallelism,
		a.Funnel.Partitions, a.Funnel.Relevant, a.Funnel.Considered,
		a.Funnel.TrieCands, a.Funnel.AfterLength, a.Funnel.AfterCoverage,
		a.Funnel.Verified, a.Funnel.Matched)
}

// Exec parses and executes one statement. Positional '?' parameters bind
// query trajectories in order.
func (db *DB) Exec(sql string, params ...*traj.T) (*Result, error) {
	return db.ExecContext(context.Background(), sql, params...)
}

// ExecContext is Exec under query-lifecycle control: the context gates
// admission, is checked throughout index probing and verification, and a
// cancellation or deadline aborts the statement with ctx.Err().
func (db *DB) ExecContext(ctx context.Context, sql string, params ...*traj.T) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecuteContext(ctx, st, params...)
}

// Execute runs a parsed statement.
func (db *DB) Execute(st Statement, params ...*traj.T) (*Result, error) {
	return db.ExecuteContext(context.Background(), st, params...)
}

// ExecuteContext runs a parsed statement under the context's lifecycle.
func (db *DB) ExecuteContext(ctx context.Context, st Statement, params ...*traj.T) (*Result, error) {
	switch s := st.(type) {
	case *CreateTable:
		db.Register(s.Name, traj.NewDataset(s.Name, nil))
		return &Result{Message: fmt.Sprintf("table %s created", s.Name)}, nil
	case *Load:
		f, err := os.Open(s.Path)
		if err != nil {
			return nil, fmt.Errorf("sqlx: %w", err)
		}
		defer f.Close()
		d, err := traj.ReadCSV(f, s.Table)
		if err != nil {
			return nil, err
		}
		db.Register(s.Table, d)
		return &Result{Message: fmt.Sprintf("loaded %d trajectories into %s", d.Len(), s.Table)}, nil
	case *CreateIndex:
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(s.Table)
		if err != nil {
			return nil, err
		}
		t.indexed = true
		t.idxName = s.Name
		// Engines are built lazily per measure; eagerly build the default
		// (DTW) so CREATE INDEX has the paper's Table 5 cost profile.
		if _, err := db.engineLocked(t, measure.DTW{}); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("trie index %s created on %s", s.Name, s.Table)}, nil
	case *Show:
		db.mu.Lock()
		defer db.mu.Unlock()
		var rows []string
		for _, t := range db.tables {
			switch s.What {
			case "TABLES":
				rows = append(rows, fmt.Sprintf("%s (%d trajectories)", t.name, t.data.Len()))
			case "INDEXES":
				if t.indexed {
					rows = append(rows, fmt.Sprintf("%s ON %s USE TRIE", t.idxName, t.name))
				}
			}
		}
		sort.Strings(rows)
		return &Result{Tables: rows}, nil
	case *Insert:
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(s.Table)
		if err != nil {
			return nil, err
		}
		nt := &traj.T{ID: s.ID, Points: s.Traj.Points}
		if err := nt.Validate(); err != nil {
			return nil, err
		}
		for _, existing := range t.data.Trajs {
			if existing.ID == s.ID {
				return nil, fmt.Errorf("sqlx: trajectory id %d already exists in %s", s.ID, t.name)
			}
		}
		t.data.Trajs = append(t.data.Trajs, nt)
		// Built engines no longer reflect the data; rebuild lazily.
		t.engines = map[string]*core.Engine{}
		return &Result{Message: fmt.Sprintf("inserted trajectory %d into %s", s.ID, t.name)}, nil
	case *Drop:
		db.mu.Lock()
		defer db.mu.Unlock()
		t, err := db.table(s.Table)
		if err != nil {
			return nil, err
		}
		if s.IndexOnly {
			t.indexed = false
			t.idxName = ""
			t.engines = map[string]*core.Engine{}
			return &Result{Message: fmt.Sprintf("index dropped from %s", t.name)}, nil
		}
		delete(db.tables, strings.ToLower(s.Table))
		return &Result{Message: fmt.Sprintf("table %s dropped", t.name)}, nil
	case *Select:
		res, err := db.execSelect(ctx, s, params, false, false)
		if err != nil {
			return nil, err
		}
		res.Count = len(res.Trajs) + len(res.Pairs)
		if s.Count {
			// COUNT(*) projects the count only.
			res.Trajs, res.Pairs = nil, nil
		}
		return res, nil
	case *Explain:
		if !s.Analyze {
			return db.execSelect(ctx, s.Stmt, params, true, false)
		}
		// EXPLAIN ANALYZE executes the statement for real — it passes
		// admission like any query — but projects the report, not rows.
		res, err := db.execSelect(ctx, s.Stmt, params, false, true)
		if err != nil {
			return nil, err
		}
		res.Count = len(res.Trajs) + len(res.Pairs)
		res.Trajs, res.Pairs = nil, nil
		return res, nil
	}
	return nil, fmt.Errorf("sqlx: unsupported statement %T", st)
}

// measureFor resolves a measure name using the context's Eps/Delta.
func (db *DB) measureFor(name string) (measure.Measure, error) {
	return measure.ByName(name, db.Eps, db.Delta)
}

// engineLocked returns (building if needed) the table's engine for the
// measure. Caller holds db.mu.
func (db *DB) engineLocked(t *table, m measure.Measure) (*core.Engine, error) {
	if e, ok := t.engines[m.Name()]; ok {
		return e, nil
	}
	opts := db.opts
	opts.Measure = m
	opts.Cluster = db.cl
	e, err := core.NewEngine(t.data, opts)
	if err != nil {
		return nil, err
	}
	t.engines[m.Name()] = e
	return e, nil
}

// execSelect plans and runs one SELECT. The catalog lock (db.mu) is held
// only while resolving tables and engines; the query itself — trie
// probing, verification, joins — runs outside it, so admission control
// actually bounds concurrent query *work* rather than serializing it
// behind a mutex. Engines are immutable once built (an Insert clears the
// cache instead of mutating them), so running one unlocked is safe.
func (db *DB) execSelect(ctx context.Context, s *Select, params []*traj.T, planOnly, analyze bool) (*Result, error) {
	// EXPLAIN never executes anything; only real queries pass admission.
	if !planOnly {
		release, err := db.adm.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// EXPLAIN ANALYZE: time execution (after admission, so queue wait is
	// not charged to the plan) and attach the funnel each branch fills.
	var aStart time.Time
	if analyze {
		aStart = time.Now()
	}
	// verifyPar is filled by the branches that resolve an engine, so the
	// ANALYZE report shows the fan-out the executed plan actually used.
	verifyPar := 0
	report := func(res *Result, f obs.Funnel) *Result {
		if analyze {
			res.Analyze = &AnalyzeReport{
				Plan:        res.Plan,
				Funnel:      f,
				Rows:        len(res.Trajs) + len(res.Pairs),
				Parallelism: verifyPar,
				Elapsed:     time.Since(aStart),
			}
		}
		return res
	}
	db.mu.Lock()
	locked := true
	unlock := func() {
		if locked {
			locked = false
			db.mu.Unlock()
		}
	}
	defer unlock()
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	nextParam := 0
	bind := func(lit *TrajLiteral) (*traj.T, error) {
		if lit == nil {
			return nil, fmt.Errorf("sqlx: missing query trajectory")
		}
		if lit.Param {
			if nextParam >= len(params) {
				return nil, fmt.Errorf("sqlx: not enough parameters: need %d", nextParam+1)
			}
			q := params[nextParam]
			nextParam++
			return q, nil
		}
		return &traj.T{ID: -1, Points: lit.Points}, nil
	}

	// kNN join: TRA-KNN-JOIN Q USING f LIMIT k.
	if s.KNNJoin {
		t2, err := db.table(s.JoinTable)
		if err != nil {
			return nil, err
		}
		m, err := db.measureFor(s.OrderBy.Measure)
		if err != nil {
			return nil, err
		}
		plan := fmt.Sprintf("KNNIndexJoin(%s, %s, k=%d, %s)", t.name, t2.name, s.Limit, m.Name())
		if planOnly {
			return &Result{Plan: plan}, nil
		}
		e1, err := db.engineLocked(t, m)
		if err != nil {
			return nil, err
		}
		e2, err := db.engineLocked(t2, m)
		if err != nil {
			return nil, err
		}
		leftTrajs := append([]*traj.T(nil), t.data.Trajs...)
		verifyPar = e1.VerifyParallelism()
		unlock()
		var js *core.JoinStats
		if analyze {
			js = &core.JoinStats{}
		}
		nn, err := e1.KNNJoinContext(ctx, e2, s.Limit, js)
		if err != nil {
			return nil, err
		}
		// Flatten to pairs: (left id, neighbor) in left-id order.
		ids := make([]int, 0, len(nn))
		for id := range nn {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var pairs []core.Pair
		left := make(map[int]*traj.T, len(leftTrajs))
		for _, tr := range leftTrajs {
			left[tr.ID] = tr
		}
		for _, id := range ids {
			for _, r := range nn[id] {
				pairs = append(pairs, core.Pair{T: left[id], Q: r.Traj, Distance: r.Distance})
			}
		}
		// The per-probe pruning funnels accumulate into the join stats;
		// EXPLAIN ANALYZE reports their sum over every left trajectory.
		var jf obs.Funnel
		if js != nil {
			jf = js.Funnel
		}
		return report(&Result{Pairs: pairs, Plan: plan}, jf), nil
	}

	// kNN: ORDER BY f(T, Q) LIMIT k.
	if s.OrderBy != nil {
		m, err := db.measureFor(s.OrderBy.Measure)
		if err != nil {
			return nil, err
		}
		plan := fmt.Sprintf("KNNIndexSearch(%s, k=%d, %s)", t.name, s.Limit, m.Name())
		if planOnly {
			return &Result{Plan: plan}, nil
		}
		q, err := bind(s.OrderBy.RightTraj)
		if err != nil {
			return nil, err
		}
		e, err := db.engineLocked(t, m)
		if err != nil {
			return nil, err
		}
		verifyPar = e.VerifyParallelism()
		unlock()
		var st *core.SearchStats
		if analyze {
			st = &core.SearchStats{}
		}
		hits, err := e.SearchKNNContext(ctx, q, s.Limit, st)
		if err != nil {
			return nil, err
		}
		res := &Result{Trajs: hits, Plan: plan}
		var f obs.Funnel
		if st != nil {
			f = st.Funnel
		}
		return report(res, f), nil
	}

	// Join.
	if s.JoinTable != "" {
		if s.Where == nil {
			return nil, fmt.Errorf("sqlx: TRA-JOIN requires an ON predicate")
		}
		t2, err := db.table(s.JoinTable)
		if err != nil {
			return nil, err
		}
		m, err := db.measureFor(s.Where.Measure)
		if err != nil {
			return nil, err
		}
		plan := fmt.Sprintf("TrieIndexJoin(%s, %s, τ=%g, %s)", t.name, t2.name, s.Where.Tau, m.Name())
		if planOnly {
			return &Result{Plan: plan}, nil
		}
		// The paper's join "first builds indexes for them" when missing.
		e1, err := db.engineLocked(t, m)
		if err != nil {
			return nil, err
		}
		e2, err := db.engineLocked(t2, m)
		if err != nil {
			return nil, err
		}
		verifyPar = e1.VerifyParallelism()
		unlock()
		var js *core.JoinStats
		if analyze {
			js = &core.JoinStats{}
		}
		pairs, err := e1.JoinContext(ctx, e2, s.Where.Tau, core.DefaultJoinOptions(), js)
		if err != nil {
			return nil, err
		}
		var f obs.Funnel
		if js != nil {
			f = js.Funnel
		}
		return report(&Result{Pairs: pairs, Plan: plan}, f), nil
	}

	// Plain scan.
	if s.Where == nil {
		plan := fmt.Sprintf("FullScan(%s)", t.name)
		if planOnly {
			return &Result{Plan: plan}, nil
		}
		out := make([]core.SearchResult, len(t.data.Trajs))
		for i, tr := range t.data.Trajs {
			out[i] = core.SearchResult{Traj: tr}
		}
		unlock()
		// A bare scan retrieves every row: the funnel is flat.
		return report(&Result{Trajs: out, Plan: plan}, flatFunnel(len(out), len(out))), nil
	}

	// Similarity search: index scan when a trie index exists, full scan
	// otherwise — the planner's cost-based physical choice.
	m, err := db.measureFor(s.Where.Measure)
	if err != nil {
		return nil, err
	}
	if planOnly {
		plan := fmt.Sprintf("FullScanFilter(%s, τ=%g, %s)", t.name, s.Where.Tau, m.Name())
		if t.indexed {
			plan = fmt.Sprintf("TrieIndexSearch(%s, τ=%g, %s)", t.name, s.Where.Tau, m.Name())
		}
		return &Result{Plan: plan}, nil
	}
	q, err := bind(s.Where.RightTraj)
	if err != nil {
		return nil, err
	}
	if q == nil || len(q.Points) == 0 {
		return nil, fmt.Errorf("sqlx: empty query trajectory")
	}
	if t.indexed {
		plan := fmt.Sprintf("TrieIndexSearch(%s, τ=%g, %s)", t.name, s.Where.Tau, m.Name())
		e, err := db.engineLocked(t, m)
		if err != nil {
			return nil, err
		}
		verifyPar = e.VerifyParallelism()
		unlock()
		var st *core.SearchStats
		if analyze {
			st = &core.SearchStats{}
		}
		trajs, err := e.SearchContext(ctx, q, s.Where.Tau, st)
		if err != nil {
			return nil, err
		}
		var f obs.Funnel
		if st != nil {
			f = st.Funnel
		}
		return report(&Result{Trajs: trajs, Plan: plan}, f), nil
	}
	plan := fmt.Sprintf("FullScanFilter(%s, τ=%g, %s)", t.name, s.Where.Tau, m.Name())
	trajs := append([]*traj.T(nil), t.data.Trajs...)
	unlock()
	out, err := db.fullScan(ctx, trajs, m, q, s.Where.Tau)
	if err != nil {
		return nil, err
	}
	// The fallback scan exact-verifies every trajectory; that is exactly
	// what a flat funnel says.
	return report(&Result{Trajs: out, Plan: plan}, flatFunnel(len(trajs), len(out))), nil
}

// flatFunnel describes an unpruned path: n candidates enter, none are
// filtered before verification, and matched of them survive.
func flatFunnel(n, matched int) obs.Funnel {
	c := int64(n)
	return obs.Funnel{
		Considered: c, TrieCands: c, AfterLength: c, AfterCoverage: c,
		Verified: c, Matched: int64(matched),
	}
}

// fullScan verifies every trajectory in parallel across the workers,
// checking the context before each threshold-distance computation.
func (db *DB) fullScan(ctx context.Context, trajs []*traj.T, m measure.Measure, q *traj.T, tau float64) ([]core.SearchResult, error) {
	W := db.cl.Workers()
	results := make([][]core.SearchResult, W)
	var tasks []cluster.Task
	for w := 0; w < W; w++ {
		w := w
		tasks = append(tasks, cluster.Task{Worker: w, Fn: func() {
			for i := w; i < len(trajs); i += W {
				if ctx.Err() != nil {
					return
				}
				tr := trajs[i]
				if d, ok := m.DistanceThreshold(tr.Points, q.Points, tau); ok {
					results[w] = append(results[w], core.SearchResult{Traj: tr, Distance: d})
				}
			}
		}})
	}
	if err := db.cl.RunContext(ctx, tasks); err != nil {
		return nil, err
	}
	var out []core.SearchResult
	for _, r := range results {
		out = append(out, r...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out, nil
}
