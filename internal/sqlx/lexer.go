// Package sqlx implements DITA's query front end (Section 3): the SQL
// dialect extending standard SELECT with trajectory similarity predicates,
//
//	CREATE TABLE name
//	LOAD 'file.csv' INTO name
//	CREATE INDEX idx ON name USE TRIE
//	SELECT * FROM T WHERE DTW(T, TRAJECTORY((x y), ...)) <= 0.005
//	SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= 0.005
//	SELECT * FROM T ORDER BY DTW(T, ?) LIMIT 5        -- kNN
//
// and a DataFrame API over the same planner. Queries are parsed to an AST,
// planned (index scan when a trie index exists, full scan otherwise — the
// cost-based physical choice of Section 3's "Query Optimization"), and
// executed on the DITA engine.
package sqlx

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * ? ; . <= < >= > =
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Identifiers keep their original case;
// keyword comparison is case-insensitive at parse time. TRA-JOIN is lexed
// as a single identifier (the '-' is allowed inside identifiers when
// surrounded by letters, to honor the paper's syntax).
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n {
				c := rune(input[i])
				if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
					i++
					continue
				}
				// Allow '-' inside an identifier when followed by a letter
				// (TRA-JOIN).
				if c == '-' && i+1 < n && unicode.IsLetter(rune(input[i+1])) {
					i += 2
					continue
				}
				break
			}
			toks = append(toks, token{tokIdent, input[start:i], start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && (unicode.IsDigit(rune(input[i+1])) || input[i+1] == '.')) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			if c == '-' {
				i++
			}
			seenDot, seenExp := false, false
			for i < n {
				c := input[i]
				if c >= '0' && c <= '9' {
					i++
				} else if c == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (c == 'e' || c == 'E') && !seenExp {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			for i < n && input[i] != '\'' {
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("sqlx: unterminated string at %d", start)
			}
			toks = append(toks, token{tokString, input[start+1 : i], start})
			i++
		case c == '<' || c == '>':
			start := i
			i++
			if i < n && input[i] == '=' {
				i++
			}
			toks = append(toks, token{tokPunct, input[start:i], start})
		case strings.ContainsRune("(),*?;.=", c):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("sqlx: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
