// Package dita is a distributed in-memory trajectory analytics library — a
// from-scratch Go reproduction of "DITA: Distributed In-Memory Trajectory
// Analytics" (Shang, Li, Bao; SIGMOD 2018).
//
// DITA answers trajectory similarity search and join queries under DTW,
// Fréchet, EDR, LCSS, ERP and Hausdorff distances, at scale, via:
//
//   - first/last-point STR partitioning with a global R-tree index and a
//     per-partition pivot-point trie index,
//   - a filter–verification pipeline (pivot lower bounds, MBR-coverage
//     filtering, cell-compression bounds, double-direction threshold DTW),
//   - a cost-based distributed join with greedy bi-graph orientation and
//     division-based load balancing,
//   - SQL and DataFrame front ends.
//
// Quick start:
//
//	data := dita.Generate(dita.BeijingLike(10000, 1))
//	eng, _ := dita.NewEngine(data, dita.DefaultOptions())
//	results := eng.Search(data.Trajs[0], 0.005, nil)
//	pairs := eng.Join(eng2, 0.005, dita.DefaultJoinOptions(), nil)
//
// or through SQL:
//
//	db := dita.NewDB(nil, dita.DefaultOptions())
//	db.Register("trips", data)
//	db.Exec("CREATE INDEX TrieIndex ON trips USE TRIE")
//	res, _ := db.Exec("SELECT * FROM trips WHERE DTW(trips, ?) <= 0.005", q)
//
// The public API re-exports the implementation packages; see DESIGN.md for
// the module map and EXPERIMENTS.md for the reproduced evaluation.
package dita

import (
	"io"

	"dita/internal/admit"
	"dita/internal/cluster"
	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/mining"
	"dita/internal/pivot"
	"dita/internal/roadnet"
	"dita/internal/simplify"
	"dita/internal/sqlx"
	"dita/internal/traj"
	"dita/internal/trie"
)

// Geometric and data-model types.
type (
	// Point is a 2-dimensional location.
	Point = geom.Point
	// MBR is a minimum bounding rectangle.
	MBR = geom.MBR
	// Trajectory is an identified point sequence.
	Trajectory = traj.T
	// Dataset is an in-memory trajectory collection.
	Dataset = traj.Dataset
)

// Engine types.
type (
	// Engine is a built DITA index serving searches and joins.
	Engine = core.Engine
	// Options configures engine construction.
	Options = core.Options
	// JoinOptions tunes the distributed join.
	JoinOptions = core.JoinOptions
	// JoinStats reports join cost counters.
	JoinStats = core.JoinStats
	// SearchStats reports the search filter funnel.
	SearchStats = core.SearchStats
	// SearchResult is one search answer.
	SearchResult = core.SearchResult
	// Pair is one join answer.
	Pair = core.Pair
	// SkipReport lists partitions a partial-tolerant query skipped.
	SkipReport = core.SkipReport
	// SkippedPartition attributes one skipped partition to its error.
	SkippedPartition = core.SkippedPartition
	// TrieConfig configures the local index.
	TrieConfig = trie.Config
	// Cluster is the simulated distributed substrate.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes the substrate.
	ClusterConfig = cluster.Config
)

// Measures.
type (
	// Measure is a trajectory distance function.
	Measure = measure.Measure
	// DTW is Dynamic Time Warping (the default measure).
	DTW = measure.DTW
	// Frechet is the discrete Fréchet distance.
	Frechet = measure.Frechet
	// EDR is Edit Distance on Real sequence.
	EDR = measure.EDR
	// LCSS is the windowed longest-common-subsequence distance.
	LCSS = measure.LCSS
	// ERP is Edit distance with Real Penalty.
	ERP = measure.ERP
	// Hausdorff is the symmetric Hausdorff set distance.
	Hausdorff = measure.Hausdorff
)

// Front end.
type (
	// DB is the SQL catalog and execution context.
	DB = sqlx.DB
	// DataFrame is the procedural query API.
	DataFrame = sqlx.DataFrame
	// SQLResult is the outcome of a SQL statement.
	SQLResult = sqlx.Result
)

// AdmissionPolicy bounds concurrent queries on a DB (DB.SetAdmission) or
// a network-mode coordinator (NetConfig.Admission): MaxConcurrent run,
// MaxQueue wait up to QueueTimeout for a slot, the rest fail fast with
// ErrOverloaded.
type AdmissionPolicy = admit.Policy

// ErrOverloaded is returned (wrapped — test with errors.Is) when
// admission control rejects a query because the system is at its
// concurrency limit and the queue is full or the queue wait timed out.
var ErrOverloaded = admit.ErrOverloaded

// Data generation.
type (
	// GenConfig parameterizes synthetic trajectory generation.
	GenConfig = gen.Config
)

// Network mode: DITA as a real multi-process distributed system (workers
// as TCP servers via stdlib net/rpc, coordinator-routed queries,
// worker-to-worker join shuffles). See cmd/dita-worker and cmd/dita-net.
type (
	// NetWorker is one network-mode node.
	NetWorker = dnet.Worker
	// NetCoordinator partitions datasets over workers and routes queries.
	NetCoordinator = dnet.Coordinator
	// NetConfig parameterizes a network-mode deployment.
	NetConfig = dnet.Config
	// NetSearchHit is one network-mode search answer.
	NetSearchHit = dnet.SearchHit
	// NetPair is one network-mode join answer.
	NetPair = dnet.WirePair
)

// Road networks (the paper's stated future-work extension).
type (
	// RoadNetwork is a weighted road graph with map matching and
	// network-constrained DTW.
	RoadNetwork = roadnet.Network
	// RoadNodeID identifies a road-network node.
	RoadNodeID = roadnet.NodeID
)

// NewRoadNetwork creates an empty road network.
func NewRoadNetwork() *RoadNetwork { return roadnet.New() }

// GridRoadNetwork builds a rows×cols street grid over the extent.
func GridRoadNetwork(extent MBR, rows, cols int) *RoadNetwork {
	return roadnet.Grid(extent, rows, cols)
}

// Mining: trajectory analytics built on the similarity primitives.
type (
	// MiningCluster is one similarity cluster.
	MiningCluster = mining.Cluster
	// Route is one frequent route.
	Route = mining.Route
	// MiningOptions tunes the mining operations.
	MiningOptions = mining.Options
)

// ClusterTrajectories groups the engine's dataset into similarity
// clusters (medoid + members), by descending support.
func ClusterTrajectories(e *Engine, opts MiningOptions) []*MiningCluster {
	return mining.Clusters(e, opts)
}

// FrequentRoutes extracts frequently driven routes (connected components
// of the τ-similarity graph) by descending support.
func FrequentRoutes(e *Engine, opts MiningOptions) []Route { return mining.FrequentRoutes(e, opts) }

// Outliers returns trajectories with fewer than minNeighbors τ-neighbors.
func Outliers(e *Engine, tau float64, minNeighbors int) []*Trajectory {
	return mining.Outliers(e, tau, minNeighbors)
}

// NewNetWorker creates an unstarted network-mode worker; call Serve.
func NewNetWorker() *NetWorker { return dnet.NewWorker() }

// ConnectNet dials network-mode workers and returns a coordinator.
func ConnectNet(addrs []string, cfg NetConfig) (*NetCoordinator, error) {
	return dnet.Connect(addrs, cfg)
}

// DefaultNetConfig returns network-mode defaults (NG=4, DTW).
func DefaultNetConfig() NetConfig { return dnet.DefaultNetConfig() }

// Pivot strategies.
const (
	// PivotNeighbor selects pivots by neighbor distance (the default).
	PivotNeighbor = pivot.Neighbor
	// PivotInflection selects pivots by turning angle.
	PivotInflection = pivot.Inflection
	// PivotFirstLast selects pivots by distance from the endpoints.
	PivotFirstLast = pivot.FirstLast
)

// NewEngine partitions and indexes a dataset (CREATE INDEX ... USE TRIE).
func NewEngine(d *Dataset, opts Options) (*Engine, error) { return core.NewEngine(d, opts) }

// DefaultOptions returns laptop-scale engine defaults (NG=8, DTW).
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultJoinOptions mirrors the paper's join settings (5% sampling, 0.98
// division quantile).
func DefaultJoinOptions() JoinOptions { return core.DefaultJoinOptions() }

// NewCluster creates a simulated cluster with the given worker count and a
// Gigabit-Ethernet network model.
func NewCluster(workers int) *Cluster { return cluster.New(cluster.DefaultConfig(workers)) }

// NewDB creates a SQL/DataFrame context.
func NewDB(cl *Cluster, opts Options) *DB { return sqlx.NewDB(cl, opts) }

// ParseSQL parses one statement of the extended SQL dialect.
func ParseSQL(sql string) (sqlx.Statement, error) { return sqlx.Parse(sql) }

// MeasureByName resolves a measure by name ("DTW", "FRECHET", "EDR",
// "LCSS", "ERP", "HAUSDORFF"); epsilon and delta configure the edit-based
// measures.
func MeasureByName(name string, epsilon float64, delta int) (Measure, error) {
	return measure.ByName(name, epsilon, delta)
}

// Generate synthesizes a trajectory dataset.
func Generate(cfg GenConfig) *Dataset { return gen.Generate(cfg) }

// BeijingLike mimics the paper's Beijing taxi dataset at n trajectories.
func BeijingLike(n int, seed int64) GenConfig { return gen.BeijingLike(n, seed) }

// ChengduLike mimics the paper's Chengdu taxi dataset.
func ChengduLike(n int, seed int64) GenConfig { return gen.ChengduLike(n, seed) }

// OSMLike mimics the paper's OSM-derived traces.
func OSMLike(n int, seed int64) GenConfig { return gen.OSMLike(n, seed) }

// Queries samples k query trajectories from a dataset.
func Queries(d *Dataset, k int, seed int64) []*Trajectory { return gen.Queries(d, k, seed) }

// Simplify returns a copy of the dataset with every trajectory simplified
// by Douglas–Peucker with error bound eps (useful preprocessing before
// indexing raw GPS traces).
func Simplify(d *Dataset, eps float64) *Dataset { return simplify.Dataset(d, eps) }

// Resample returns n points evenly spaced by arc length along the
// trajectory's polyline.
func Resample(pts []Point, n int) []Point { return simplify.Resample(pts, n) }

// WriteCSV writes a dataset in the one-line-per-trajectory CSV format
// (id,x1,y1,x2,y2,...).
func WriteCSV(w io.Writer, d *Dataset) error { return traj.WriteCSV(w, d) }

// ReadCSV parses the CSV interchange format.
func ReadCSV(r io.Reader, name string) (*Dataset, error) { return traj.ReadCSV(r, name) }
