#!/bin/sh
# Soak test for the HTTP serving layer (internal/serve + dita-serve):
# two phases against real processes over real sockets.
#
# Phase 1 (steady state): a dita-serve fronting 2 loopback workers takes
# a mixed query/write load at a sustainable rate. The drive harness
# re-checks sampled cache hits against bypass queries — a single stale
# hit fails the run — and the run also fails on untyped errors (the
# overload contract is typed 429/503, never a timeout pile-up), on a
# served-p99 SLO breach, or if the cache never hit at all (a serving
# layer whose cache does nothing is misconfigured, not lucky).
#
# Phase 2 (overload): a second dita-serve with a starved admission
# budget takes ~3x its capacity. The run fails unless load is refused
# with typed 429/503 sheds, and fails on any untyped error: shedding,
# not collapsing, is the contract under pressure.
#
#   make serve-soak                        # default 10s steady phase
#   SERVE_SOAK_DURATION=5s make serve-soak # shorter
#   SERVE_REPORT_DIR=out make serve-soak   # keep the JSON reports
set -eu

cd "$(dirname "$0")/.."
DUR="${SERVE_SOAK_DURATION:-10s}"
TMP="$(mktemp -d)"
REPORT_DIR="${SERVE_REPORT_DIR:-$TMP}"
mkdir -p "$REPORT_DIR"
S1= S2=
cleanup() {
	[ -n "$S1" ] && kill "$S1" 2>/dev/null || true
	[ -n "$S2" ] && kill "$S2" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/dita-serve" ./cmd/dita-serve

scrape() {
	if command -v curl >/dev/null 2>&1; then curl -fsS "$1"; else wget -qO- "$1"; fi
}
wait_ready() { # $1 = base URL
	i=0
	while ! scrape "$1/readyz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -lt 60 ] || { echo "serve-soak: $1 never became ready"; exit 1; }
		sleep 0.5
	done
}
json_field() { # $1 = file, $2 = field name; integer-valued fields only
	sed -n "s/^  \"$2\": \([0-9][0-9]*\).*/\1/p" "$1"
}

# ---------------------------------------------------------------------
# Phase 1: steady state. No admission budget; the rate is set well under
# loopback capacity so every shed or SLO breach is a real bug.
"$TMP/dita-serve" -listen 127.0.0.1:18095 -spawn 2 -gen beijing:1500 \
	>"$TMP/s1.log" 2>&1 &
S1=$!
wait_ready http://127.0.0.1:18095
scrape http://127.0.0.1:18095/healthz >/dev/null \
	|| { echo "serve-soak: /healthz not serving"; exit 1; }

# Join is excluded from the mix: a self-join recomputed after every
# write invalidation costs seconds, which is a capacity decision, not a
# latency bug — the serve tests and ditabench cover the join path.
"$TMP/dita-serve" -drive http://127.0.0.1:18095 -duration "$DUR" -rate 150 \
	-mix 'search=57,knn=25,ingest=13,delete=5' \
	-slo-p99-ms 500 -report "$REPORT_DIR/serve_slo.json" \
	|| { echo "serve-soak: steady phase failed (stale hit, untyped error, or SLO breach)"; cat "$TMP/s1.log"; exit 1; }

HITS="$(json_field "$REPORT_DIR/serve_slo.json" cache_hits)"
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] \
	|| { echo "serve-soak: steady phase produced no cache hits (got '${HITS:-missing}')"; exit 1; }
STALE="$(json_field "$REPORT_DIR/serve_slo.json" stale_hits)"
[ "$STALE" = "0" ] || { echo "serve-soak: $STALE stale cache hits"; exit 1; }

kill "$S1" 2>/dev/null || true
wait "$S1" 2>/dev/null || true
S1=
echo "serve-soak: steady phase ok ($HITS cache hits verified against bypass, 0 stale)"

# ---------------------------------------------------------------------
# Phase 2: overload. A 2ms concurrent-cost budget with a 4-deep queue
# takes 500 req/s: most of it must be refused with typed 429/503.
"$TMP/dita-serve" -listen 127.0.0.1:18096 -spawn 2 -gen beijing:1500 \
	-cost-budget-us 2000 -max-queue 4 >"$TMP/s2.log" 2>&1 &
S2=$!
wait_ready http://127.0.0.1:18096

"$TMP/dita-serve" -drive http://127.0.0.1:18096 -duration "$DUR" -rate 500 \
	-expect-shed 1 -report "$REPORT_DIR/serve_overload.json" \
	|| { echo "serve-soak: overload phase failed (no typed sheds, a stale hit, or untyped errors)"; cat "$TMP/s2.log"; exit 1; }

SHED="$(json_field "$REPORT_DIR/serve_overload.json" shed)"
echo "serve-soak: overload phase ok ($SHED typed 429 sheds, reports in $REPORT_DIR)"
