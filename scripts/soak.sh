#!/bin/sh
# Soak test for the query lifecycle machinery: start dita-worker
# processes under fault injection (-chaos), then drive dita-net's
# cancelled-query churn workload (-soak) against them. Every query must
# end in a clean lifecycle outcome — completed (possibly partial),
# deadline exceeded, cancelled, or overloaded; anything else fails the
# run (dita-net exits non-zero), as does a worker crash. At exit the
# workers' /metrics endpoints are scraped: a nonzero queries-inflight
# gauge means a query leaked through the lifecycle machinery and fails
# the run.
#
#   make soak                  # 30s run
#   SOAK_DURATION=5s make soak # shorter
set -eu

cd "$(dirname "$0")/.."
DUR="${SOAK_DURATION:-30s}"
TMP="$(mktemp -d)"
W1= W2=
cleanup() {
	[ -n "$W1" ] && kill "$W1" 2>/dev/null || true
	[ -n "$W2" ] && kill "$W2" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/dita-worker" ./cmd/dita-worker
go build -o "$TMP/dita-net" ./cmd/dita-net

"$TMP/dita-worker" -listen 127.0.0.1:17461 -metrics-addr 127.0.0.1:17471 \
	-chaos seed=7,drop=0.02,err=0.01,delay=1ms >"$TMP/w1.log" 2>&1 &
W1=$!
"$TMP/dita-worker" -listen 127.0.0.1:17462 -metrics-addr 127.0.0.1:17472 \
	-chaos seed=8,drop=0.02,err=0.01,delay=1ms >"$TMP/w2.log" 2>&1 &
W2=$!
sleep 1

"$TMP/dita-net" -workers 127.0.0.1:17461,127.0.0.1:17462 \
	-gen beijing:1000 -tau 0.005 -allow-partial \
	-max-concurrent 8 -max-queue 8 -soak "$DUR"

# Both workers must have survived the churn.
kill -0 "$W1" 2>/dev/null || { echo "soak: worker 1 died"; cat "$TMP/w1.log"; exit 1; }
kill -0 "$W2" 2>/dev/null || { echo "soak: worker 2 died"; cat "$TMP/w2.log"; exit 1; }

# Scrape each worker's metrics: after the workload drains, no query may
# still be counted in flight — a nonzero gauge is a lifecycle leak.
scrape() {
	if command -v curl >/dev/null 2>&1; then curl -fsS "$1"; else wget -qO- "$1"; fi
}
for MPORT in 17471 17472; do
	METRICS="$(scrape "http://127.0.0.1:$MPORT/metrics")" \
		|| { echo "soak: metrics scrape on :$MPORT failed"; exit 1; }
	INFLIGHT="$(printf '%s\n' "$METRICS" | awk '$1 == "worker_queries_inflight" { print $2 }')"
	[ -n "$INFLIGHT" ] || { echo "soak: worker_queries_inflight missing from :$MPORT scrape"; exit 1; }
	if [ "$INFLIGHT" != "0" ]; then
		echo "soak: worker on :$MPORT still reports $INFLIGHT queries in flight"
		printf '%s\n' "$METRICS" | grep '^worker_'
		exit 1
	fi
done
echo "soak: ok (workers alive, queries-inflight gauges zero)"
