#!/bin/sh
# Soak test for the query lifecycle machinery: start dita-worker
# processes under fault injection (-chaos), then drive dita-net's
# cancelled-query churn workload (-soak) against them. Every query must
# end in a clean lifecycle outcome — completed (possibly partial),
# deadline exceeded, cancelled, or overloaded; anything else fails the
# run (dita-net exits non-zero), as does a worker crash. At exit the
# workers' /metrics endpoints are scraped: a nonzero queries-inflight
# gauge means a query leaked through the lifecycle machinery and fails
# the run.
#
#   make soak                  # 30s run
#   SOAK_DURATION=5s make soak # shorter
# After the churn workload, a cold-restart phase exercises the snapshot
# persistence path end to end: a fresh run records a result digest, the
# workers are SIGKILLed (no drain — a crash), restarted over the same
# -snapshot-dir, and the rerun must ship zero partitions and print the
# identical digest; then one snapshot file is truncated (a torn write)
# and the next restart must classify it, re-ship only what was lost, and
# still print the identical digest.
#
# A final ingest phase streams WAL-backed mutations (-ingest) into the
# cluster, records the post-ingest digest, SIGKILLs the workers, and
# restarts them: the logs must replay every acked mutation, and re-running
# the identical (idempotent) mutation stream must reproduce the digest
# exactly — zero acked writes lost to the crash.
#
# The closing phases cover online re-partitioning: a hotspot ingest
# stream that the operator-driven -rebalance planner must re-cut without
# changing an answer, then a skewed READ workload that the background
# autopilot must act on by itself (split cutover or replica promotion)
# while the digest stays byte-identical to an autopilot-disabled run.
set -eu

cd "$(dirname "$0")/.."
DUR="${SOAK_DURATION:-30s}"
TMP="$(mktemp -d)"
W1= W2= W3= W4=
cleanup() {
	[ -n "$W1" ] && kill "$W1" 2>/dev/null || true
	[ -n "$W2" ] && kill "$W2" 2>/dev/null || true
	[ -n "$W3" ] && kill -9 "$W3" 2>/dev/null || true
	[ -n "$W4" ] && kill -9 "$W4" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

go build -o "$TMP/dita-worker" ./cmd/dita-worker
go build -o "$TMP/dita-net" ./cmd/dita-net

"$TMP/dita-worker" -listen 127.0.0.1:17461 -metrics-addr 127.0.0.1:17471 \
	-chaos seed=7,drop=0.02,err=0.01,delay=1ms >"$TMP/w1.log" 2>&1 &
W1=$!
"$TMP/dita-worker" -listen 127.0.0.1:17462 -metrics-addr 127.0.0.1:17472 \
	-chaos seed=8,drop=0.02,err=0.01,delay=1ms >"$TMP/w2.log" 2>&1 &
W2=$!
sleep 1

"$TMP/dita-net" -workers 127.0.0.1:17461,127.0.0.1:17462 \
	-gen beijing:1000 -tau 0.005 -allow-partial \
	-max-concurrent 8 -max-queue 8 -soak "$DUR"

# Both workers must have survived the churn.
kill -0 "$W1" 2>/dev/null || { echo "soak: worker 1 died"; cat "$TMP/w1.log"; exit 1; }
kill -0 "$W2" 2>/dev/null || { echo "soak: worker 2 died"; cat "$TMP/w2.log"; exit 1; }

# Scrape each worker's metrics: after the workload drains, no query may
# still be counted in flight — a nonzero gauge is a lifecycle leak.
scrape() {
	if command -v curl >/dev/null 2>&1; then curl -fsS "$1"; else wget -qO- "$1"; fi
}
for MPORT in 17471 17472; do
	METRICS="$(scrape "http://127.0.0.1:$MPORT/metrics")" \
		|| { echo "soak: metrics scrape on :$MPORT failed"; exit 1; }
	INFLIGHT="$(printf '%s\n' "$METRICS" | awk '$1 == "worker_queries_inflight" { print $2 }')"
	[ -n "$INFLIGHT" ] || { echo "soak: worker_queries_inflight missing from :$MPORT scrape"; exit 1; }
	if [ "$INFLIGHT" != "0" ]; then
		echo "soak: worker on :$MPORT still reports $INFLIGHT queries in flight"
		printf '%s\n' "$METRICS" | grep '^worker_'
		exit 1
	fi
done
echo "soak: ok (workers alive, queries-inflight gauges zero)"

# ---------------------------------------------------------------------
# Cold-restart phase: snapshot persistence under crashes and torn writes.
SNAP1="$TMP/snap1" SNAP2="$TMP/snap2"
NETARGS="-gen beijing:800 -tau 0.005 -queries 40 -digest"

start_snap_workers() {
	"$TMP/dita-worker" -listen 127.0.0.1:17463 -snapshot-dir "$SNAP1" >"$TMP/w3.log" 2>&1 &
	W3=$!
	"$TMP/dita-worker" -listen 127.0.0.1:17464 -snapshot-dir "$SNAP2" >"$TMP/w4.log" 2>&1 &
	W4=$!
	sleep 1
}
crash_snap_workers() { # SIGKILL: no drain, no cleanup — a crash
	kill -9 "$W3" "$W4" 2>/dev/null || true
	wait "$W3" "$W4" 2>/dev/null || true
	W3= W4=
}
digest_of() { awk '$1 == "search" && $2 == "digest:" { print $3 }' "$1"; }
shipped_of() { grep -o '[0-9]* shipped' "$1" | awk '{ print $1 }'; }

# Run A: fresh build, record the digest.
start_snap_workers
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $NETARGS >"$TMP/runA.log"
DIG_A="$(digest_of "$TMP/runA.log")"
[ -n "$DIG_A" ] || { echo "soak: run A produced no digest"; cat "$TMP/runA.log"; exit 1; }
[ "$(shipped_of "$TMP/runA.log")" != "0" ] || { echo "soak: run A shipped nothing"; exit 1; }

# Run B: crash + cold restart over intact snapshots — zero re-ship,
# identical answers.
crash_snap_workers
start_snap_workers
grep -q "restored" "$TMP/w3.log" || { echo "soak: worker 3 restored nothing"; cat "$TMP/w3.log"; exit 1; }
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $NETARGS >"$TMP/runB.log"
DIG_B="$(digest_of "$TMP/runB.log")"
SHIP_B="$(shipped_of "$TMP/runB.log")"
[ "$SHIP_B" = "0" ] || { echo "soak: cold restart re-shipped $SHIP_B partitions, want 0"; cat "$TMP/runB.log"; exit 1; }
[ "$DIG_B" = "$DIG_A" ] || { echo "soak: cold-start digest $DIG_B != fresh digest $DIG_A"; exit 1; }

# Run C: crash, tear one snapshot in half, restart — the corrupt file is
# classified and re-shipped; answers still identical.
crash_snap_workers
SNAPFILE="$(ls "$SNAP1"/*.snap | head -1)"
SIZE="$(wc -c < "$SNAPFILE")"
head -c "$((SIZE / 2))" "$SNAPFILE" > "$SNAPFILE.torn" && mv "$SNAPFILE.torn" "$SNAPFILE"
start_snap_workers
grep -q "skipped .*corrupt" "$TMP/w3.log" \
	|| { echo "soak: torn snapshot was not classified corrupt"; cat "$TMP/w3.log"; exit 1; }
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $NETARGS >"$TMP/runC.log"
DIG_C="$(digest_of "$TMP/runC.log")"
SHIP_C="$(shipped_of "$TMP/runC.log")"
[ "$SHIP_C" != "0" ] || { echo "soak: torn snapshot was not re-shipped"; cat "$TMP/runC.log"; exit 1; }
[ "$DIG_C" = "$DIG_A" ] || { echo "soak: post-corruption digest $DIG_C != fresh digest $DIG_A"; exit 1; }
echo "soak: cold-restart ok (zero re-ship on clean restart, torn snapshot recovered, digests identical)"

# ---------------------------------------------------------------------
# Ingest phase: WAL-backed streaming writes surviving a crash. The
# mutation stream is seeded, so replaying it is idempotent: after a
# SIGKILL + WAL replay, re-running the identical stream must land on the
# identical digest — any acked-but-lost write would change it.
crash_snap_workers
SNAP1="$TMP/snap3" SNAP2="$TMP/snap4"
INGEST_ARGS="-gen beijing:800 -tau 0.005 -queries 40 -digest -ingest 400"

start_snap_workers
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $INGEST_ARGS >"$TMP/runD.log"
grep -q "^ingest: .* upserts" "$TMP/runD.log" \
	|| { echo "soak: run D streamed no mutations"; cat "$TMP/runD.log"; exit 1; }
DIG_D="$(digest_of "$TMP/runD.log")"
[ -n "$DIG_D" ] || { echo "soak: run D produced no digest"; cat "$TMP/runD.log"; exit 1; }

# Crash (no drain: acked writes live only in the fsync'd logs) + restart.
crash_snap_workers
start_snap_workers
REPLAYED="$(grep -o '[0-9]* WAL records replayed' "$TMP/w3.log" | tail -1 | awk '{ print $1 }')"
[ -n "$REPLAYED" ] && [ "$REPLAYED" -gt 0 ] \
	|| { echo "soak: worker 3 replayed no WAL records after the crash"; cat "$TMP/w3.log"; exit 1; }
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $INGEST_ARGS >"$TMP/runE.log"
DIG_E="$(digest_of "$TMP/runE.log")"
[ "$DIG_E" = "$DIG_D" ] || { echo "soak: post-crash ingest digest $DIG_E != pre-crash digest $DIG_D"; exit 1; }
echo "soak: ingest ok ($REPLAYED WAL records replayed on worker 3, digests identical across the crash)"

# ---------------------------------------------------------------------
# Skew phase: online STR re-partitioning under hotspot ingest. A skewed
# mutation stream concentrates writes in one partition; -rebalance must
# run at least one cutover and bring occupancy skew back within the
# bound, without changing a single answer. The stream is seeded, so
# re-running it (idempotent upserts into the already re-cut cluster,
# plus a second planner pass) must reproduce the digest exactly.
crash_snap_workers
SNAP1="$TMP/snap5" SNAP2="$TMP/snap6"
SKEW_ARGS="-gen beijing:800 -tau 0.005 -queries 40 -digest -ingest 400 -ingest-skew 0.8 -rebalance -rebalance-skew 2"

start_snap_workers
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $SKEW_ARGS >"$TMP/runF.log"
CUTOVERS="$(awk '$1 == "rebalance:" { print $8 }' "$TMP/runF.log")"
[ -n "$CUTOVERS" ] && [ "$CUTOVERS" -ge 1 ] \
	|| { echo "soak: skewed ingest triggered no rebalance cutover"; cat "$TMP/runF.log"; exit 1; }
SKEW_OK="$(awk '$1 == "rebalance:" { print ($6 <= 2.0 && $6 < $4) ? "yes" : "no" }' "$TMP/runF.log")"
[ "$SKEW_OK" = "yes" ] \
	|| { echo "soak: rebalance left occupancy skew above the bound"; cat "$TMP/runF.log"; exit 1; }
DIG_F="$(digest_of "$TMP/runF.log")"
[ -n "$DIG_F" ] || { echo "soak: run F produced no digest"; cat "$TMP/runF.log"; exit 1; }

"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $SKEW_ARGS >"$TMP/runG.log"
DIG_G="$(digest_of "$TMP/runG.log")"
[ "$DIG_G" = "$DIG_F" ] || { echo "soak: post-rebalance re-stream digest $DIG_G != $DIG_F"; exit 1; }
echo "soak: rebalance ok ($CUTOVERS cutover(s), skew within bound, digest identical across re-stream)"

# ---------------------------------------------------------------------
# Autopilot phase: cost-driven re-partitioning with nobody at the wheel.
# A skewed read workload (-query-skew) concentrates verify cost in one
# partition; the coordinator's background autopilot — no operator
# -rebalance flag — must take at least one automatic action (split
# cutover or replica promotion) during warmup, spread the measured reads
# across every worker, and leave the digested answers byte-identical to
# an autopilot-disabled control run over the same data and query stream.
crash_snap_workers
SNAP1="$TMP/snap7" SNAP2="$TMP/snap8"
AP_ARGS="-gen beijing:800 -tau 0.005 -queries 40 -digest -query-skew 0.8"

start_snap_workers
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $AP_ARGS >"$TMP/runH.log"
DIG_H="$(digest_of "$TMP/runH.log")"
[ -n "$DIG_H" ] || { echo "soak: run H produced no digest"; cat "$TMP/runH.log"; exit 1; }

crash_snap_workers
SNAP1="$TMP/snap9" SNAP2="$TMP/snap10"
start_snap_workers
"$TMP/dita-net" -workers 127.0.0.1:17463,127.0.0.1:17464 $AP_ARGS \
	-autopilot -autopilot-interval 50ms >"$TMP/runI.log"
# Summary line: "autopilot: N automatic cutover(s), M promotion(s) ..."
ACTIONS="$(awk '$1 == "autopilot:" && $3 == "automatic" { print $2 + $5 }' "$TMP/runI.log")"
[ -n "$ACTIONS" ] && [ "$ACTIONS" -ge 1 ] \
	|| { echo "soak: autopilot took no automatic action under skewed reads"; cat "$TMP/runI.log"; exit 1; }
BUSY="$(awk '$1 == "autopilot:" && $2 == "per-worker" { n = 0; for (i = 5; i <= NF; i++) if ($i > 0) n++; print n }' "$TMP/runI.log")"
[ -n "$BUSY" ] && [ "$BUSY" -ge 2 ] \
	|| { echo "soak: skewed reads hit only ${BUSY:-0} worker(s), want >= 2"; cat "$TMP/runI.log"; exit 1; }
DIG_I="$(digest_of "$TMP/runI.log")"
[ "$DIG_I" = "$DIG_H" ] || { echo "soak: autopilot digest $DIG_I != control digest $DIG_H"; exit 1; }
echo "soak: autopilot ok ($ACTIONS automatic action(s), reads on $BUSY workers, digest identical to control)"
