package dita_test

import (
	"testing"

	"dita"
)

// TestPublicAPI exercises the whole facade end to end: generate, index,
// search, join, kNN, SQL, DataFrame.
func TestPublicAPI(t *testing.T) {
	data := dita.Generate(dita.BeijingLike(400, 1))
	if data.Len() != 400 {
		t.Fatalf("generated %d trajectories", data.Len())
	}
	opts := dita.DefaultOptions()
	opts.NG = 3
	opts.Cluster = dita.NewCluster(4)
	eng, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := dita.Queries(data, 1, 2)[0]
	res := eng.Search(q, 0.01, nil)
	foundSelf := false
	for _, r := range res {
		if r.Traj.ID == q.ID {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Error("search did not find the query itself")
	}
	knn := eng.SearchKNN(q, 5)
	if len(knn) != 5 || knn[0].Traj.ID != q.ID {
		t.Errorf("kNN: %d results, first=%v", len(knn), knn[0].Traj.ID)
	}

	eng2, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	pairs := eng.Join(eng2, 0.002, dita.DefaultJoinOptions(), nil)
	if len(pairs) < data.Len() {
		t.Errorf("self-join found %d pairs, want at least %d (self pairs)", len(pairs), data.Len())
	}

	db := dita.NewDB(nil, opts)
	db.Register("trips", data)
	if _, err := db.Exec("CREATE INDEX TrieIndex ON trips USE TRIE"); err != nil {
		t.Fatal(err)
	}
	out, err := db.Exec("SELECT * FROM trips WHERE DTW(trips, ?) <= 0.01", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trajs) != len(res) {
		t.Errorf("SQL search returned %d, API returned %d", len(out.Trajs), len(res))
	}
	df, err := db.Table("trips")
	if err != nil {
		t.Fatal(err)
	}
	dfRes, err := df.SimilaritySearch(q, "DTW", 0.01)
	if err != nil || len(dfRes) != len(res) {
		t.Errorf("DataFrame search: %v, %d vs %d", err, len(dfRes), len(res))
	}

	if _, err := dita.MeasureByName("LCSS", 0.001, 3); err != nil {
		t.Error(err)
	}
	if _, err := dita.ParseSQL("SELECT * FROM trips ORDER BY DTW(trips, ?) LIMIT 3"); err != nil {
		t.Error(err)
	}
}
