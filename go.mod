module dita

go 1.22
