package dita_test

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (reduced sweeps — cmd/ditabench runs the full parameter grids), plus
// micro-benchmarks of the core primitives. Run with:
//
//	go test -bench=. -benchmem
//
// Naming: BenchmarkFig7SearchVaryTau corresponds to the paper's Figure 7,
// and so on; see DESIGN.md's per-experiment index.

import (
	"testing"

	"dita"
	"dita/internal/exp"
	"dita/internal/measure"
)

// benchConfig is the reduced scale used inside testing.B iterations.
func benchConfig() exp.Config {
	cfg := exp.DefaultConfig()
	cfg.NBeijing, cfg.NChengdu, cfg.NOSM, cfg.NJoin = 1200, 1200, 600, 400
	cfg.Queries = 20
	cfg.Workers = 4
	return cfg
}

// benchExp runs one experiment per iteration.
func benchExp(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section 7.2.1: distributed search (Figures 7, 8) ---------------------

func BenchmarkFig7aSearchVaryTauBeijing(b *testing.B)     { benchExp(b, "fig7a") }
func BenchmarkFig7bSearchScalabilityBeijing(b *testing.B) { benchExp(b, "fig7b") }
func BenchmarkFig7cSearchScaleUpBeijing(b *testing.B)     { benchExp(b, "fig7c") }
func BenchmarkFig7dSearchScaleOutBeijing(b *testing.B)    { benchExp(b, "fig7d") }
func BenchmarkFig8aSearchVaryTauChengdu(b *testing.B)     { benchExp(b, "fig8a") }
func BenchmarkFig8bSearchScalabilityChengdu(b *testing.B) { benchExp(b, "fig8b") }
func BenchmarkFig8cSearchScaleUpChengdu(b *testing.B)     { benchExp(b, "fig8c") }
func BenchmarkFig8dSearchScaleOutChengdu(b *testing.B)    { benchExp(b, "fig8d") }

// --- Section 7.2.2: distributed join (Figures 9, 10) ----------------------

func BenchmarkFig9aJoinVaryTauBeijing(b *testing.B)      { benchExp(b, "fig9a") }
func BenchmarkFig9bJoinScalabilityBeijing(b *testing.B)  { benchExp(b, "fig9b") }
func BenchmarkFig9cJoinScaleUpBeijing(b *testing.B)      { benchExp(b, "fig9c") }
func BenchmarkFig9dJoinScaleOutBeijing(b *testing.B)     { benchExp(b, "fig9d") }
func BenchmarkFig10aJoinVaryTauChengdu(b *testing.B)     { benchExp(b, "fig10a") }
func BenchmarkFig10bJoinScalabilityChengdu(b *testing.B) { benchExp(b, "fig10b") }
func BenchmarkFig10cJoinScaleUpChengdu(b *testing.B)     { benchExp(b, "fig10c") }
func BenchmarkFig10dJoinScaleOutChengdu(b *testing.B)    { benchExp(b, "fig10d") }

// --- Section 7.3: large datasets (Figure 11) -------------------------------

func BenchmarkFig11aSearchOSMDTW(b *testing.B)     { benchExp(b, "fig11a") }
func BenchmarkFig11bJoinOSMDTW(b *testing.B)       { benchExp(b, "fig11b") }
func BenchmarkFig11cSearchOSMFrechet(b *testing.B) { benchExp(b, "fig11c") }
func BenchmarkFig11dJoinOSMFrechet(b *testing.B)   { benchExp(b, "fig11d") }

// --- Appendix B ablations (Figures 12-16, Table 4-5) -----------------------

func BenchmarkFig12aPivotStrategyBeijing(b *testing.B) { benchExp(b, "fig12a") }
func BenchmarkFig12bPivotStrategyChengdu(b *testing.B) { benchExp(b, "fig12b") }
func BenchmarkFig12cPivotSizeBeijing(b *testing.B)     { benchExp(b, "fig12c") }
func BenchmarkFig12dPivotSizeChengdu(b *testing.B)     { benchExp(b, "fig12d") }
func BenchmarkFig13aPartitioningBeijing(b *testing.B)  { benchExp(b, "fig13a") }
func BenchmarkFig13bPartitioningChengdu(b *testing.B)  { benchExp(b, "fig13b") }
func BenchmarkFig14aVaryNLBeijing(b *testing.B)        { benchExp(b, "fig14a") }
func BenchmarkFig14bVaryNLChengdu(b *testing.B)        { benchExp(b, "fig14b") }
func BenchmarkFig15aOtherDistances(b *testing.B)       { benchExp(b, "fig15a") }
func BenchmarkFig15bEditDistances(b *testing.B)        { benchExp(b, "fig15b") }
func BenchmarkFig16aLoadRatioBeijing(b *testing.B)     { benchExp(b, "fig16a") }
func BenchmarkFig16bLoadRatioChengdu(b *testing.B)     { benchExp(b, "fig16b") }
func BenchmarkFig16cBalancingTimeBeijing(b *testing.B) { benchExp(b, "fig16c") }
func BenchmarkFig16dBalancingTimeChengdu(b *testing.B) { benchExp(b, "fig16d") }
func BenchmarkTable1WorkedExample(b *testing.B)        { benchExp(b, "table1") }
func BenchmarkTable2DatasetStats(b *testing.B)         { benchExp(b, "table2") }
func BenchmarkTable4VaryNG(b *testing.B)               { benchExp(b, "table4") }
func BenchmarkTable5IndexingTimeSize(b *testing.B)     { benchExp(b, "table5") }

// --- Appendix C centralized comparison (Figure 17, Table 7) ----------------

func BenchmarkFig17aCentralCandidatesDTW(b *testing.B)     { benchExp(b, "fig17a") }
func BenchmarkFig17bCentralTimeDTW(b *testing.B)           { benchExp(b, "fig17b") }
func BenchmarkFig17cCentralCandidatesFrechet(b *testing.B) { benchExp(b, "fig17c") }
func BenchmarkFig17dCentralTimeFrechet(b *testing.B)       { benchExp(b, "fig17d") }
func BenchmarkTable7CentralIndexing(b *testing.B)          { benchExp(b, "table7") }

// --- Micro-benchmarks of the core primitives -------------------------------

func benchTrajs(n int) *dita.Dataset {
	return dita.Generate(dita.BeijingLike(n, 1))
}

func BenchmarkDTWExact(b *testing.B) {
	d := benchTrajs(200)
	m := measure.DTW{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := d.Trajs[i%100]
		c := d.Trajs[100+i%100]
		m.Distance(a.Points, c.Points)
	}
}

func BenchmarkDTWThresholdDoubleDirection(b *testing.B) {
	d := benchTrajs(200)
	m := measure.DTW{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := d.Trajs[i%100]
		c := d.Trajs[100+i%100]
		m.DistanceThreshold(a.Points, c.Points, 0.003)
	}
}

func BenchmarkFrechetThreshold(b *testing.B) {
	d := benchTrajs(200)
	m := measure.Frechet{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := d.Trajs[i%100]
		c := d.Trajs[100+i%100]
		m.DistanceThreshold(a.Points, c.Points, 0.003)
	}
}

func BenchmarkEngineBuild(b *testing.B) {
	d := benchTrajs(2000)
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dita.NewEngine(d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSearch(b *testing.B) {
	d := benchTrajs(5000)
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	e, err := dita.NewEngine(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	qs := dita.Queries(d, 100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(qs[i%len(qs)], 0.003, nil)
	}
}

func BenchmarkEngineSelfJoin(b *testing.B) {
	d := benchTrajs(800)
	opts := dita.DefaultOptions()
	opts.NG = 4
	opts.Cluster = dita.NewCluster(4)
	e1, err := dita.NewEngine(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	e2, err := dita.NewEngine(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e1.Join(e2, 0.002, dita.DefaultJoinOptions(), nil)
	}
}

func BenchmarkSQLSearch(b *testing.B) {
	d := benchTrajs(2000)
	db := dita.NewDB(dita.NewCluster(4), dita.DefaultOptions())
	db.Register("t", d)
	if _, err := db.Exec("CREATE INDEX i ON t USE TRIE"); err != nil {
		b.Fatal(err)
	}
	q := dita.Queries(d, 1, 3)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT * FROM t WHERE DTW(t, ?) <= 0.003", q); err != nil {
			b.Fatal(err)
		}
	}
}
