// Carpool: find shareable rides with a trajectory similarity self-join.
//
// The paper's introduction motivates DITA with car pooling: two trips whose
// trajectories are similar end to end could have shared one car. This
// example runs a DTW self-join over a morning's synthetic taxi trips and
// reports the pooling opportunities and the fleet reduction they imply.
package main

import (
	"fmt"
	"log"
	"sort"

	"dita"
)

func main() {
	// A morning of Chengdu-like trips.
	trips := dita.Generate(dita.ChengduLike(4000, 20))
	fmt.Printf("analyzing %d trips for car-pooling opportunities\n", trips.Len())

	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	left, err := dita.NewEngine(trips, opts)
	if err != nil {
		log.Fatal(err)
	}
	right, err := dita.NewEngine(trips, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Two trips are poolable when their DTW distance is within ~200 m
	// (0.002 degrees) accumulated over the aligned route.
	const tau = 0.002
	pairs := left.Join(right, tau, dita.DefaultJoinOptions(), nil)

	// Keep each unordered pair once, drop self-pairs.
	poolable := map[int][]int{}
	count := 0
	for _, p := range pairs {
		if p.T.ID >= p.Q.ID {
			continue
		}
		poolable[p.T.ID] = append(poolable[p.T.ID], p.Q.ID)
		count++
	}
	fmt.Printf("found %d poolable trip pairs (τ=%.3f)\n", count, tau)

	// Greedy matching: pair each trip with its first available partner —
	// a lower bound on how many cars the fleet saves.
	used := map[int]bool{}
	saved := 0
	ids := make([]int, 0, len(poolable))
	for id := range poolable {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if used[id] {
			continue
		}
		for _, partner := range poolable[id] {
			if !used[partner] {
				used[id], used[partner] = true, true
				saved++
				break
			}
		}
	}
	fmt.Printf("greedy matching pools %d trip pairs: %d fewer cars on the road (%.1f%% of the fleet)\n",
		saved, saved, 100*float64(saved)/float64(trips.Len()))

	// Show a few example matches.
	shown := 0
	for _, p := range pairs {
		if p.T.ID >= p.Q.ID {
			continue
		}
		fmt.Printf("  pool trips %d and %d (DTW %.5f, lengths %d/%d)\n",
			p.T.ID, p.Q.ID, p.Distance, p.T.Len(), p.Q.Len())
		if shown++; shown == 5 {
			break
		}
	}
}
