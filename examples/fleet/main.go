// Fleet route consolidation: simplify raw GPS traces, then use the kNN
// join to find, for every trip, its most similar other trip — the building
// block for route deduplication and frequent-route mining (the paper's
// "road planning" and "transportation optimization" motivations).
package main

import (
	"fmt"
	"log"
	"sort"

	"dita"
)

func main() {
	raw := dita.Generate(dita.BeijingLike(2000, 70))
	rawStats := raw.Stats()

	// 1. Preprocess: simplify each trace with a ~10 m error bound. This is
	// what a fleet backend does before indexing raw GPS.
	trips := dita.Simplify(raw, 0.0001)
	simpStats := trips.Stats()
	fmt.Printf("simplification: %d -> %d points (%.0f%% smaller), max error <= 0.0001 deg\n",
		rawStats.TotalPoints, simpStats.TotalPoints,
		100*(1-float64(simpStats.TotalPoints)/float64(rawStats.TotalPoints)))

	// 2. Index both sides and run the 2-NN join (nearest non-self
	// neighbor for every trip).
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	left, err := dita.NewEngine(trips, opts)
	if err != nil {
		log.Fatal(err)
	}
	right, err := dita.NewEngine(trips, opts)
	if err != nil {
		log.Fatal(err)
	}
	nn, err := left.KNNJoin(right, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Trips whose nearest non-self neighbor is very close are
	// duplicates of an existing route; everything else is a unique route.
	type dup struct {
		id, mate int
		d        float64
	}
	var dups []dup
	for id, res := range nn {
		for _, r := range res {
			if r.Traj.ID != id {
				if r.Distance < 0.002 {
					dups = append(dups, dup{id, r.Traj.ID, r.Distance})
				}
				break
			}
		}
	}
	sort.Slice(dups, func(i, j int) bool { return dups[i].d < dups[j].d })
	fmt.Printf("%d of %d trips are near-duplicates of another trip\n", len(dups), trips.Len())
	fmt.Printf("=> a route library needs only ~%d canonical routes\n", trips.Len()-len(dups)/2)
	for i, d := range dups {
		if i == 5 {
			break
		}
		fmt.Printf("  trip %-5d duplicates trip %-5d (DTW %.5f)\n", d.id, d.mate, d.d)
	}
}
