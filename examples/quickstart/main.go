// Quickstart: generate a city-scale trajectory dataset, build the DITA
// index, and run a similarity search, a kNN query, and a self-join.
package main

import (
	"fmt"
	"log"

	"dita"
)

func main() {
	// 1. Data: 5,000 Beijing-like taxi trips (seeded, deterministic).
	data := dita.Generate(dita.BeijingLike(5000, 1))
	s := data.Stats()
	fmt.Printf("dataset: %d trajectories, avg length %.1f points\n", s.Cardinality, s.AvgLen)

	// 2. Index: first/last STR partitioning + global R-trees + local
	// pivot tries, on a simulated 4-worker cluster.
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	engine, err := dita.NewEngine(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	global, local := engine.IndexSizeBytes()
	fmt.Printf("index built in %v (global %.1f KB, local %.1f KB)\n",
		engine.BuildTime, float64(global)/1e3, float64(local)/1e3)

	// 3. Similarity search: trajectories within τ of a query (τ=0.005 is
	// roughly 555 m in degree units).
	q := dita.Queries(data, 1, 7)[0]
	var stats dita.SearchStats
	results := engine.Search(q, 0.005, &stats)
	fmt.Printf("search τ=0.005: %d results (%d/%d partitions probed, %d candidates)\n",
		len(results), stats.RelevantPartitions, len(engine.Partitions()), stats.Candidates)
	for i, r := range results {
		if i == 5 {
			fmt.Printf("  ...\n")
			break
		}
		fmt.Printf("  traj %-6d DTW=%.5f\n", r.Traj.ID, r.Distance)
	}

	// 4. kNN: the 5 most similar trajectories, no threshold needed.
	knn := engine.SearchKNN(q, 5)
	fmt.Println("5 nearest neighbors:")
	for _, r := range knn {
		fmt.Printf("  traj %-6d DTW=%.5f\n", r.Traj.ID, r.Distance)
	}

	// 5. Self-join: all similar pairs at a tight threshold.
	engine2, err := dita.NewEngine(data, opts)
	if err != nil {
		log.Fatal(err)
	}
	var jstats dita.JoinStats
	pairs := engine.Join(engine2, 0.001, dita.DefaultJoinOptions(), &jstats)
	fmt.Printf("self-join τ=0.001: %d pairs (%d partition edges, %d trajectories shuffled, load ratio %.2f)\n",
		len(pairs), jstats.Edges, jstats.TrajsSent, jstats.LoadRatio)
}
