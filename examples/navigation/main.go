// Navigation: frequent-trajectory route suggestion.
//
// The paper motivates DITA with "frequent trajectory based navigation
// systems": given the route a driver is about to take, find how often
// similar routes were driven historically — a popular route with many
// similar past trips is well-validated; an unusual one may deserve a
// re-route suggestion. This example uses similarity search over a history
// of trips, comparing DTW and Fréchet as the similarity notion.
package main

import (
	"fmt"
	"log"

	"dita"
)

func main() {
	history := dita.Generate(dita.BeijingLike(8000, 30))
	fmt.Printf("route history: %d past trips\n", history.Len())

	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	engine, err := dita.NewEngine(history, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Planned routes to score (drawn from the same traffic distribution).
	planned := dita.Queries(history, 5, 99)
	const tau = 0.004

	fmt.Printf("scoring %d planned routes at τ=%.3f (DTW)\n\n", len(planned), tau)
	for _, route := range planned {
		var stats dita.SearchStats
		similar := engine.Search(route, tau, &stats)
		// The route itself is in the history; don't count it.
		support := 0
		for _, r := range similar {
			if r.Traj.ID != route.ID {
				support++
			}
		}
		verdict := "UNUSUAL — consider re-route suggestion"
		if support >= 10 {
			verdict = "popular, well-validated route"
		} else if support >= 3 {
			verdict = "known route"
		}
		fmt.Printf("route %-6d (%2d points): %3d similar past trips -> %s\n",
			route.ID, route.Len(), support, verdict)
	}

	// The same question under the metric Fréchet distance (maximum
	// deviation rather than accumulated deviation).
	fopts := opts
	fopts.Measure = dita.Frechet{}
	fengine, err := dita.NewEngine(history, fopts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame routes under Fréchet (max deviation <= %.3f):\n", 0.002)
	for _, route := range planned {
		similar := fengine.Search(route, 0.002, nil)
		fmt.Printf("route %-6d: %3d past trips never deviate more than ~220 m\n",
			route.ID, len(similar)-1)
	}

	// Road-network awareness (the road-network extension): the same two
	// trips can be Euclidean-close but far apart on the road graph when a
	// barrier (river, railway) separates their streets.
	ext := dita.MBR{Min: dita.Point{X: 116.0, Y: 39.6}, Max: dita.Point{X: 116.8, Y: 40.2}}
	roads := dita.GridRoadNetwork(ext, 40, 40)
	a, b := planned[0], planned[1]
	fmt.Printf("\nroad-network DTW between routes %d and %d: %.4f (network-constrained)\n",
		a.ID, b.ID, roads.TrajectoryDTW(a, b))

	// And through SQL, as a navigation backend would issue it.
	db := dita.NewDB(opts.Cluster, opts)
	db.Register("history", history)
	if _, err := db.Exec("CREATE INDEX TrieIndex ON history USE TRIE"); err != nil {
		log.Fatal(err)
	}
	res, err := db.Exec("SELECT * FROM history ORDER BY DTW(history, ?) LIMIT 3", planned[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop-3 most similar historical trips to route %d (via SQL kNN):\n", planned[0].ID)
	for _, r := range res.Trajs {
		fmt.Printf("  traj %-6d DTW=%.5f\n", r.Traj.ID, r.Distance)
	}
}
