// SQL and DataFrame front-end tour: the Section 3 interface end to end —
// DDL, index creation, similarity search with a trajectory literal,
// TRA-JOIN, kNN via ORDER BY ... LIMIT, and the equivalent DataFrame
// calls.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dita"
)

func main() {
	db := dita.NewDB(dita.NewCluster(4), dita.DefaultOptions())

	// Register two synthetic tables; persist one to CSV and LOAD it back
	// to demonstrate the ingestion path.
	trips := dita.Generate(dita.BeijingLike(3000, 40))
	db.Register("trips", trips)
	// Same seed: the second table shares the first's route templates, so
	// the cross-table join below finds genuinely similar trips.
	other := dita.Generate(dita.BeijingLike(2000, 40))
	for _, t := range other.Trajs {
		t.ID += 1_000_000 // keep the two id spaces disjoint
	}
	dir, err := os.MkdirTemp("", "dita-sqlshell")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csv := filepath.Join(dir, "other.csv")
	f, err := os.Create(csv)
	if err != nil {
		log.Fatal(err)
	}
	if err := dita.WriteCSV(f, other); err != nil {
		log.Fatal(err)
	}
	f.Close()

	statements := []string{
		"LOAD '" + csv + "' INTO other",
		"SHOW TABLES",
		"CREATE INDEX TrieIndex ON trips USE TRIE",
		"SHOW INDEXES",
	}
	for _, s := range statements {
		fmt.Printf("dita> %s\n", s)
		res, err := db.Exec(s)
		if err != nil {
			log.Fatal(err)
		}
		if res.Message != "" {
			fmt.Println("  " + res.Message)
		}
		for _, row := range res.Tables {
			fmt.Println("  " + row)
		}
	}

	// Similarity search with a bound parameter.
	q := dita.Queries(trips, 1, 5)[0]
	fmt.Printf("dita> SELECT * FROM trips WHERE DTW(trips, ?) <= 0.005   -- ? = traj %d\n", q.ID)
	res, err := db.Exec("SELECT * FROM trips WHERE DTW(trips, ?) <= 0.005", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d rows  [%s]\n", len(res.Trajs), res.Plan)

	// The same search under EDR (ε comes from the context).
	db.Eps = 0.001
	res, err = db.Exec("SELECT * FROM trips WHERE EDR(trips, ?) <= 10", q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dita> SELECT * FROM trips WHERE EDR(trips, ?) <= 10\n  %d rows  [%s]\n", len(res.Trajs), res.Plan)

	// Distributed join.
	fmt.Println("dita> SELECT * FROM trips TRA-JOIN other ON DTW(trips, other) <= 0.002")
	res, err = db.Exec("SELECT * FROM trips TRA-JOIN other ON DTW(trips, other) <= 0.002")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d pairs  [%s]\n", len(res.Pairs), res.Plan)

	// kNN via ORDER BY ... LIMIT.
	fmt.Println("dita> SELECT * FROM trips ORDER BY DTW(trips, ?) LIMIT 3")
	res, err = db.Exec("SELECT * FROM trips ORDER BY DTW(trips, ?) LIMIT 3", q)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Trajs {
		fmt.Printf("  traj %-8d DTW=%.6f\n", r.Traj.ID, r.Distance)
	}

	// The DataFrame equivalents.
	df, err := db.Table("trips")
	if err != nil {
		log.Fatal(err)
	}
	dfOther, err := db.Table("other")
	if err != nil {
		log.Fatal(err)
	}
	search, _ := df.SimilaritySearch(q, "DTW", 0.005)
	join, _ := df.SimilarityJoin(dfOther, "DTW", 0.002)
	knn, _ := df.KNN(q, "DTW", 3)
	fmt.Printf("\nDataFrame API: search=%d rows, join=%d pairs, knn=%d rows — identical to SQL\n",
		len(search), len(join), len(knn))
}
