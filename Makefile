# DITA build/test entry points. `make check` is the CI gate: static
# analysis plus the full test suite under the race detector (the dnet
# chaos tests are required to be race-clean).

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

check: vet race
