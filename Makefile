# DITA build/test entry points. `make check` is the CI gate: static
# analysis plus the full test suite under the race detector (the dnet
# chaos tests are required to be race-clean), then a repeat run of the
# chaos tests to shake out order-dependent flakes.

GO ?= go

.PHONY: build test race vet staticcheck chaos knn snap ingest serve rebalance autopilot fuzz check soak serve-soak bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs only when installed — the build environment is
# offline, so the tool cannot be fetched on demand.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

race:
	$(GO) test -race ./...

# Chaos tests re-run (-count=2 defeats the test cache) to catch failures
# that only appear with state left over from a prior in-process run.
chaos:
	$(GO) test -race -run Chaos -count=2 ./...

# kNN differential tests (best-first engine vs brute force locally, dnet
# vs local over live TCP workers incl. a chaos worker kill) rerun under
# the race detector; -count=2 defeats the cache like the chaos target.
knn:
	$(GO) test -race -run KNN -count=2 ./internal/core ./internal/dnet

# Snapshot persistence tests: format round-trip/corruption detection,
# serialized-trie integrity, engine cold start, and the dnet
# cold-restart/heal chaos paths — rerun under the race detector,
# -count=2 to defeat the cache.
snap:
	$(GO) test -race -run 'Snap|Snapshot|ColdStart|RetainPayloads|Serial' -count=2 \
		./internal/snap ./internal/trie ./internal/core ./internal/dnet

# Streaming-ingest tests: WAL append/replay/torn-tail handling, engine
# insert/delete/merge differential checks, and the dnet ingest paths
# (replication-before-ack, kill-restart replay, backpressure, seq
# seeding) — rerun under the race detector, -count=2 to defeat the
# cache.
ingest:
	$(GO) test -race -run 'Ingest|WAL|Replay|Merge|Backpressure' -count=2 \
		./internal/wal ./internal/core ./internal/dnet

# Serving-layer tests: the result-cache/coalescing/shedding stack plus
# the cost-gate admission primitive — including the cache-vs-ingest
# differential against a live 2-worker cluster — rerun under the race
# detector, -count=2 to defeat the cache.
serve:
	$(GO) test -race -count=2 ./internal/serve/ ./internal/admit/

# Online re-partitioning tests: the engine split/merge/planner
# differential suite, the dnet live-cluster cutover suite (all five
# measures, concurrent writes racing cutovers, abort-never-a-mix), and
# the coordinator-recovery regressions — rerun under the race detector,
# -count=2 to defeat the cache.
rebalance:
	$(GO) test -race -run 'Rebalance|Repartition|Recover|CutoverAbort' -count=2 \
		./internal/str ./internal/core ./internal/dnet

# Rebalancing-autopilot differential suite: the cost tracker/planner
# unit gates, the planner single-snapshot race regression, the rotated
# read-spread and failover-ordering contracts, and the live-cluster
# skewed-read differential (autopilot acts on its own; answers stay
# byte-identical to an autopilot-disabled run) — under the race
# detector, -count=2 to defeat the cache.
autopilot:
	$(GO) test -race -count=2 \
		-run 'CostTracker|CostHot|AutopilotCostSplit|SearchFeedsCost|ConvergenceBudget|SingleSnapshotRace|ReadSpread|AutopilotSkewed' \
		./internal/core ./internal/dnet

# Short coverage-guided fuzz smoke of every parser that takes untrusted
# input (CSV trajectory loader, SQL lexer/parser, snapshot decoder, WAL
# replay). -run='^$$' skips the unit tests so only the fuzz engine runs.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/traj
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/sqlx
	$(GO) test -run='^$$' -fuzz=FuzzLexer -fuzztime=$(FUZZTIME) ./internal/sqlx
	$(GO) test -run='^$$' -fuzz=FuzzSnapshot -fuzztime=$(FUZZTIME) ./internal/snap
	$(GO) test -run='^$$' -fuzz='FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run='^$$' -fuzz='FuzzWALReplayRaw$$' -fuzztime=$(FUZZTIME) ./internal/wal
	$(GO) test -run='^$$' -fuzz=FuzzRepartitionPlan -fuzztime=$(FUZZTIME) ./internal/str

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Machine-readable benchmark: per-workload latency percentiles plus the
# pruning funnel, written to BENCH_<preset>.json (schema: EXPERIMENTS.md).
BENCH_DIR ?= .
BENCH_PRESETS ?= default
bench-json:
	$(GO) run ./cmd/ditabench -bench $(BENCH_PRESETS) -bench-json $(BENCH_DIR)

check: vet staticcheck race chaos knn snap ingest serve rebalance autopilot fuzz

# 30-second soak: dita-net's cancelled-query churn workload against
# in-process workers running under fault injection (-chaos). Exits
# non-zero if any query fails with something other than a clean
# lifecycle outcome (done / deadline / cancelled / overloaded).
soak:
	./scripts/soak.sh

# Serving-layer soak: dita-serve over loopback workers under a mixed
# load (stale-hit detection against bypass queries, served-p99 SLO),
# then an overload phase that must shed with typed 429/503. Reports
# land in SERVE_REPORT_DIR when set.
serve-soak:
	./scripts/serve_soak.sh
