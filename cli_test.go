package dita_test

// End-to-end tests of the command-line tools: each binary is compiled once
// per test run into a temp dir and driven as a real process.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles the cmd binaries once for all CLI tests.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "dita-cli")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"dita", "datagen", "ditabench", "dita-worker", "dita-net"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(buildDir, tool), "./cmd/"+tool).CombinedOutput()
			if err != nil {
				buildErr = err
				buildDir = string(out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v (%s)", buildErr, buildDir)
	}
	return buildDir
}

func runTool(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	out, err := exec.Command(filepath.Join(dir, tool), args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIDatagenAndShell(t *testing.T) {
	dir := buildTools(t)
	csv := filepath.Join(t.TempDir(), "trips.csv")
	out := runTool(t, dir, "datagen", "-preset", "chengdu", "-n", "200", "-seed", "3", "-o", csv, "-stats")
	if !strings.Contains(out, "200 trajectories") {
		t.Errorf("datagen stats output: %q", out)
	}
	if fi, err := os.Stat(csv); err != nil || fi.Size() == 0 {
		t.Fatalf("datagen produced no CSV: %v", err)
	}

	// Load the CSV through the SQL shell and count rows.
	out = runTool(t, dir, "dita", "-load", csv, "-table", "trips",
		"-c", "SELECT COUNT(*) FROM trips")
	if !strings.Contains(out, "count: 200") {
		t.Errorf("shell count output: %q", out)
	}

	// Index + search through the shell.
	out = runTool(t, dir, "dita", "-gen", "beijing:300", "-c",
		"SELECT * FROM trips ORDER BY DTW(trips, TRAJECTORY((116.3 39.9), (116.31 39.91))) LIMIT 3")
	if !strings.Contains(out, "3 rows") {
		t.Errorf("shell kNN output: %q", out)
	}
}

func TestCLIDitabench(t *testing.T) {
	dir := buildTools(t)
	out := runTool(t, dir, "ditabench", "-list")
	for _, id := range []string{"fig7a", "fig16a", "table5"} {
		if !strings.Contains(out, id) {
			t.Errorf("ditabench -list missing %s", id)
		}
	}
	out = runTool(t, dir, "ditabench", "-exp", "table1,table2", "-scale", "0.05", "-queries", "5", "-workers", "2")
	if !strings.Contains(out, "5.41") {
		t.Errorf("table1 output missing the DTW value: %q", out)
	}
	if !strings.Contains(out, "BeijingLike") {
		t.Errorf("table2 output missing dataset rows: %q", out)
	}
	// TSV mode.
	out = runTool(t, dir, "ditabench", "-exp", "table2", "-scale", "0.05", "-tsv")
	if !strings.Contains(out, "\t") {
		t.Errorf("tsv output has no tabs: %q", out)
	}
}

func TestCLINetworkMode(t *testing.T) {
	dir := buildTools(t)
	out := runTool(t, dir, "dita-net", "-spawn", "2", "-gen", "beijing:400", "-tau", "0.005", "-queries", "10")
	for _, want := range []string{"spawned 2 loopback workers", "dispatched 400 trajectories", "search: 10 queries"} {
		if !strings.Contains(out, want) {
			t.Errorf("dita-net output missing %q:\n%s", want, out)
		}
	}
}
